"""Phase 1 of the two-phase analyzer: project-wide symbol summaries.

The original linter ran every rule over one file at a time, which is
enough for syntactic rules (``unseeded-rng`` needs only the call it is
looking at) but useless for lock discipline: whether ``self.items``
may be mutated without a lock depends on whether *some* class in the
inheritance chain — possibly defined in another file — owns a
``threading.Lock``.  This module is the first pass that makes such
questions answerable.  :func:`build_project` walks every parsed module
once and records, per class:

* which attributes are assigned a lock-like object
  (``threading.Lock`` / ``RLock`` / ``Condition`` / semaphores) —
  :attr:`ClassSummary.lock_attrs`;
* the canonical constructor or annotation type of simple attribute
  assignments (``self._cond = threading.Condition()`` records
  ``_cond -> threading.Condition``) — :attr:`ClassSummary.attr_types`;
* every ``self.<attr>`` write site with its method and line —
  :attr:`ClassSummary.attr_writes`;
* methods handed to ``threading.Thread(target=self.m)`` or submitted
  to an executor — thread entrypoints whose bodies run concurrently —
  :attr:`ClassSummary.thread_targets`;
* base classes as canonical dotted names, so
  :meth:`ProjectSummary.lock_attrs_of` can resolve lock ownership
  across files and modules.

Per module it also records mutable module-level globals (dict/list/set
bindings), which the ``shared-state-into-worker`` rule checks against
``ProcessPoolExecutor`` submissions — including globals imported from
*other* modules in the linted set.

Everything here is purely syntactic (stdlib ``ast``; nothing is
imported or executed), matching the rest of the linter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.astutil import ImportMap, self_attr

#: Canonical constructor names whose instances serialize access.
LOCK_TYPES = frozenset(
    {
        "threading.BoundedSemaphore",
        "threading.Condition",
        "threading.Lock",
        "threading.RLock",
        "threading.Semaphore",
        "multiprocessing.Condition",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
    }
)

#: Canonical names recorded in ``attr_types`` (beyond the lock types).
TRACKED_TYPES = LOCK_TYPES | frozenset(
    {
        "threading.Event",
        "threading.Thread",
        "threading.local",
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
    }
)

#: Constructors / literals considered shared-mutable at module level.
_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "collections.OrderedDict",
        "collections.defaultdict",
        "collections.deque",
        "dict",
        "list",
        "set",
    }
)
_MUTABLE_LITERALS = (ast.Dict, ast.DictComp, ast.List, ast.ListComp, ast.Set, ast.SetComp)


@dataclass
class ClassSummary:
    """Everything phase 2 needs to know about one class definition."""

    module: str
    name: str
    path: str
    line: int
    #: Base classes as canonical dotted names (best effort).
    bases: Tuple[str, ...] = ()
    #: Attributes assigned a lock-like object anywhere in the class.
    lock_attrs: frozenset = frozenset()
    #: attr -> canonical type name, for ``self.x = Ctor()`` assignments
    #: and dataclass-style ``x: Ctor`` annotations of tracked types.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: attr -> [(method, line), ...] for every ``self.attr`` write site.
    attr_writes: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)
    #: Methods passed as ``Thread(target=self.m)`` / ``submit(self.m)``.
    thread_targets: frozenset = frozenset()

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}" if self.module else self.name

    @property
    def owns_lock(self) -> bool:
        return bool(self.lock_attrs)


@dataclass
class ModuleSummary:
    """Per-module facts: its classes and its mutable globals."""

    module: str
    path: str
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    #: Module-level names bound to a mutable container.
    mutable_globals: frozenset = frozenset()


class ProjectSummary:
    """Cross-module symbol table assembled by :func:`build_project`."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        #: qualname (``module.Class``) -> summary.
        self.classes: Dict[str, ClassSummary] = {}

    def add_module(self, summary: ModuleSummary) -> None:
        self.modules[summary.module] = summary
        for cls in summary.classes.values():
            self.classes[cls.qualname] = cls

    def resolve_class(self, qualname: str) -> Optional[ClassSummary]:
        return self.classes.get(qualname)

    def lock_attrs_of(self, cls: ClassSummary) -> frozenset:
        """Lock attributes owned by ``cls`` or any resolvable ancestor.

        This is the cross-module query: a subclass in one file inherits
        the lock discipline of a base defined in another.  Unresolvable
        bases (third-party classes) contribute nothing.
        """
        seen = set()
        collected = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            collected |= current.lock_attrs
            for base in current.bases:
                resolved = self.classes.get(base)
                if resolved is not None:
                    stack.append(resolved)
        return frozenset(collected)

    def attr_type_of(self, cls: ClassSummary, attr: str) -> Optional[str]:
        """Canonical type of ``attr`` on ``cls``, searching ancestors."""
        seen = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if attr in current.attr_types:
                return current.attr_types[attr]
            for base in current.bases:
                resolved = self.classes.get(base)
                if resolved is not None:
                    stack.append(resolved)
        return None

    def is_mutable_global(self, canonical: str) -> bool:
        """True when ``canonical`` (``module.NAME``) is a mutable global."""
        module, _, name = canonical.rpartition(".")
        summary = self.modules.get(module)
        return summary is not None and name in summary.mutable_globals


def _canonical_call_type(node: ast.AST, imports: ImportMap) -> Optional[str]:
    """Canonical constructor name of a ``Ctor(...)`` expression."""
    if isinstance(node, ast.Call):
        return imports.canonical(node.func)
    return None


def _enclosing_method_name(node: ast.AST, class_node: ast.ClassDef) -> str:
    """Name of the method of ``class_node`` that lexically contains ``node``."""
    current = getattr(node, "parent", None)
    method = "<class body>"
    while current is not None and current is not class_node:
        if (
            isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef))
            and getattr(current, "parent", None) is class_node
        ):
            method = current.name
        current = getattr(current, "parent", None)
    return method


def _owned_by(node: ast.AST, class_node: ast.ClassDef) -> bool:
    """True when ``class_node`` is the *nearest* class containing ``node``.

    ``ast.walk`` descends into nested class definitions; their writes
    belong to their own summaries, not the enclosing class's.
    """
    current = getattr(node, "parent", None)
    while current is not None:
        if isinstance(current, ast.ClassDef):
            return current is class_node
        current = getattr(current, "parent", None)
    return False


def _write_targets(node: ast.AST) -> Iterable[ast.AST]:
    """Expressions written to by an assignment-like statement."""
    if isinstance(node, ast.Assign):
        return node.targets
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target] if node.value is not None or isinstance(node, ast.AugAssign) else []
    return []


def summarize_class(
    class_node: ast.ClassDef, module: str, path: str, imports: ImportMap
) -> ClassSummary:
    """Phase-1 facts for one class definition."""
    bases = []
    for base in class_node.bases:
        canonical = imports.canonical(base)
        if canonical is None:
            continue
        # A bare in-module name resolves to this module's namespace.
        if "." not in canonical and module:
            canonical = f"{module}.{canonical}"
        bases.append(canonical)
    lock_attrs = set()
    attr_types: Dict[str, str] = {}
    attr_writes: Dict[str, List[Tuple[str, int]]] = {}
    thread_targets = set()
    # Dataclass-style annotations in the class body declare instance
    # attributes; record tracked types (``done: threading.Event = ...``).
    for statement in class_node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            canonical = imports.canonical(statement.annotation)
            if canonical in TRACKED_TYPES:
                attr_types[statement.target.id] = canonical
                if canonical in LOCK_TYPES:
                    lock_attrs.add(statement.target.id)
    for node in ast.walk(class_node):
        # Nested classes keep their own summaries; skip their internals.
        if node is not class_node and not _owned_by(node, class_node):
            continue
        for target in _write_targets(node):
            base_target = target
            if isinstance(base_target, ast.Subscript):
                base_target = base_target.value
            attr = self_attr(base_target)
            if attr is None:
                continue
            method = _enclosing_method_name(node, class_node)
            attr_writes.setdefault(attr, []).append((method, node.lineno))
            if isinstance(node, ast.Assign) or (
                isinstance(node, ast.AnnAssign) and node.value is not None
            ):
                value = node.value
                canonical = _canonical_call_type(value, imports)
                if canonical in TRACKED_TYPES:
                    attr_types[attr] = canonical
                    if canonical in LOCK_TYPES:
                        lock_attrs.add(attr)
        if isinstance(node, ast.Call):
            callee = imports.canonical(node.func)
            if callee == "threading.Thread":
                for keyword in node.keywords:
                    if keyword.arg == "target":
                        target_attr = self_attr(keyword.value)
                        if target_attr is not None:
                            thread_targets.add(target_attr)
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map", "apply_async")
                and node.args
            ):
                target_attr = self_attr(node.args[0])
                if target_attr is not None:
                    thread_targets.add(target_attr)
    return ClassSummary(
        module=module,
        name=class_node.name,
        path=path,
        line=class_node.lineno,
        bases=tuple(bases),
        lock_attrs=frozenset(lock_attrs),
        attr_types=attr_types,
        attr_writes={k: sorted(v) for k, v in sorted(attr_writes.items())},
        thread_targets=frozenset(thread_targets),
    )


def summarize_module(source_module) -> ModuleSummary:
    """Phase-1 facts for one parsed :class:`~repro.lint.walker.SourceModule`."""
    module = source_module.module or ""
    imports = ImportMap(source_module.tree)
    summary = ModuleSummary(module=module, path=source_module.display_path)
    mutable_globals = set()
    for statement in source_module.tree.body:
        if isinstance(statement, ast.Assign):
            value = statement.value
            mutable = isinstance(value, _MUTABLE_LITERALS) or (
                isinstance(value, ast.Call)
                and imports.canonical(value.func) in _MUTABLE_CONSTRUCTORS
            )
            if mutable:
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        mutable_globals.add(target.id)
    summary.mutable_globals = frozenset(mutable_globals)
    for node in ast.walk(source_module.tree):
        if isinstance(node, ast.ClassDef):
            summary.classes[node.name] = summarize_class(
                node, module, source_module.display_path, imports
            )
    return summary


def build_project(source_modules) -> ProjectSummary:
    """Assemble the cross-module summary over every parsed module.

    Modules that failed to parse contribute nothing (their
    ``syntax-error`` finding is reported by the driver); duplicate
    module names keep the last summary, matching import semantics.
    """
    project = ProjectSummary()
    for source_module in source_modules:
        if source_module.tree is None:
            continue
        project.add_module(summarize_module(source_module))
    return project
