"""Rule registry and the ``Finding`` value type.

A rule is a class with an ``id``, a ``family`` (``determinism``,
``concurrency``, ...), a ``severity`` (``error`` / ``warning`` /
``note`` — SARIF levels), a one-line ``summary``, longer ``docs``
(rationale plus a bad/good example, rendered by ``biggerfish lint
--explain <rule>``) and a ``check(module, project)`` generator yielding
:class:`Finding` objects.  ``project`` is the phase-1
:class:`~repro.lint.project.ProjectSummary` built over every linted
file before any rule runs, which is what lets the concurrency family
answer cross-module questions (does some ancestor of this class own a
lock?).  Per-file rules simply ignore it.

Rules self-register with the :func:`register` decorator; importing
:mod:`repro.lint.rules` pulls in every built-in rule module.

Adding a rule is three steps: create ``repro/lint/rules/<name>.py``
with a ``@register``-decorated subclass, import it from
``repro/lint/rules/__init__.py``, and add a fixture pair under
``tests/lint/fixtures/``.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, ClassVar, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.lint.project import ProjectSummary
    from repro.lint.walker import SourceModule

#: Valid ``Rule.severity`` values, in decreasing order of gravity.
#: These map one-to-one onto SARIF ``level`` values.
SEVERITIES = ("error", "warning", "note")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def fingerprint(self) -> str:
        """Stable identity used for baseline matching."""
        return f"{self.rule}:{_posix(self.path)}:{self.line}"

    def as_dict(self) -> dict:
        return asdict(self)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


def _posix(path: str) -> str:
    return path.replace("\\", "/")


class Rule:
    """Base class for lint rules; subclass and decorate with @register."""

    id: ClassVar[str]
    summary: ClassVar[str]
    docs: ClassVar[str]
    #: Rule family, selectable as a group via ``--select``/``--ignore``.
    family: ClassVar[str] = "determinism"
    #: SARIF-aligned severity: "error", "warning" or "note".
    severity: ClassVar[str] = "error"

    def check(
        self, module: "SourceModule", project: "ProjectSummary"
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: "SourceModule", node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_RULES: dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one instance of ``cls`` to the registry."""
    rule = cls()
    if rule.id in _RULES:
        raise ValueError(f"duplicate lint rule id {rule.id!r}")
    if rule.severity not in SEVERITIES:
        raise ValueError(
            f"rule {rule.id!r} has invalid severity {rule.severity!r}; "
            f"expected one of {SEVERITIES}"
        )
    _RULES[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def rule_ids() -> list[str]:
    return sorted(_RULES)


def rule_families() -> list[str]:
    """Every distinct rule family, sorted."""
    return sorted({rule.family for rule in _RULES.values()})


def get_rule(rule_id: str) -> Rule:
    """Look up one rule; raises :class:`KeyError` with the unknown id."""
    return _RULES[rule_id]
