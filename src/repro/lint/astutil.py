"""Shared AST helpers for lint rules.

The central abstraction is :class:`ImportMap`: rules match *canonical*
dotted names (``numpy.random.default_rng``, ``time.perf_counter``) and
the map normalizes whatever spelling the file actually used —
``import numpy as np``, ``from numpy import random as npr``,
``from time import perf_counter`` — back to that canonical form.
Resolution is purely syntactic (no imports are executed), which is all
a determinism linter needs: a local variable shadowing ``time`` would
fool it, and ``# lint: disable=`` exists for such corner cases.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ImportMap:
    """Alias table from a module's import statements."""

    def __init__(self, tree: ast.Module):
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def canonical(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of an expression, or None.

        ``np.random.default_rng`` (after ``import numpy as np``) becomes
        ``numpy.random.default_rng``; a bare ``perf_counter`` (after
        ``from time import perf_counter``) becomes ``time.perf_counter``.
        ``numpy`` itself is further normalized so ``np`` spellings and
        the real package name compare equal.
        """
        spelled = dotted_name(node)
        if spelled is None:
            return None
        head, _, rest = spelled.partition(".")
        target = self.aliases.get(head, head)
        resolved = f"{target}.{rest}" if rest else target
        # Normalize the numpy shorthand even without an import in scope
        # (fixture files sometimes reference np without importing it).
        if resolved == "np" or resolved.startswith("np."):
            resolved = "numpy" + resolved[2:]
        return resolved


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``parent`` links upward (requires walker.annotate_parents)."""
    current = getattr(node, "parent", None)
    while current is not None:
        yield current
        current = getattr(current, "parent", None)


def enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    """Nearest enclosing (async) function definition, if any."""
    for ancestor in ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def wrapped_in_call_to(node: ast.AST, names: frozenset) -> bool:
    """True when an enclosing expression is a call to one of ``names``.

    Walks parents only within the current expression (stops at any
    statement node), so ``sorted(list(p.glob(...)))`` counts as wrapped
    while a ``sorted()`` call later in the function does not.
    """
    for ancestor in ancestors(node):
        if isinstance(ancestor, ast.stmt):
            return False
        if (
            isinstance(ancestor, ast.Call)
            and isinstance(ancestor.func, ast.Name)
            and ancestor.func.id in names
        ):
            return True
    return False


def call_has_arguments(call: ast.Call) -> bool:
    return bool(call.args or call.keywords)


def self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` for a ``self.attr`` expression, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def held_self_locks(node: ast.AST) -> frozenset:
    """Attribute names ``X`` for every enclosing ``with self.X:`` block.

    Walks parents only within the enclosing function — a ``with`` block
    that merely *defines* the function does not hold its lock when the
    function later runs.  Both ``with self._lock:`` and
    ``with self._lock, other:`` forms are recognized; locks bound to
    local names first are not tracked (name the guard explicitly or use
    ``# lint: disable=``).
    """
    held = set()
    for ancestor in ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                attr = self_attr(item.context_expr)
                if attr is not None:
                    held.add(attr)
    return frozenset(held)
