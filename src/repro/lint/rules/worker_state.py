"""shared-state-into-worker: process pools don't share your memory.

Arguments submitted to a ``ProcessPoolExecutor`` are pickled into a
child process.  Handing workers a module-level mutable global, or a
``self`` bound method of a lock-owning object, *looks* like sharing
but is a fork-time snapshot: the worker mutates its private copy (the
parent never sees the writes), and on fork-start methods the pickled
object can carry unpicklable or stale lock state.  Either pass plain
data in and results out, or use a ``ThreadPoolExecutor`` /
``multiprocessing.Manager`` when genuine sharing is required.

Flagged for any ``submit``/``map`` call on an executor the phase-1
summary types as ``concurrent.futures.ProcessPoolExecutor`` (a
``self`` attribute or a local constructed in the same function):

* arguments naming a module-level mutable global (dict/list/set
  binding) — including globals imported from other linted modules;
* ``self`` or ``self.method`` arguments when the enclosing class owns
  a lock (its state is exactly the kind that cannot cross a fork).

Bad::

    _CACHE = {}

    with ProcessPoolExecutor() as pool:
        pool.submit(work, _CACHE)        # worker mutates its own copy

Good::

    with ProcessPoolExecutor() as pool:
        future = pool.submit(work, dict(snapshot))   # explicit copy in
        merged.update(future.result())               # explicit data out
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.astutil import ImportMap, ancestors, self_attr
from repro.lint.registry import Finding, Rule, register
from repro.lint.walker import SourceModule

_PROCESS_POOL = "concurrent.futures.ProcessPoolExecutor"


def _enclosing_class_summary(node: ast.AST, module_summary):
    if module_summary is None:
        return None
    for ancestor in ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return module_summary.classes.get(ancestor.name)
    return None


def _local_process_pools(function: ast.AST, imports: ImportMap) -> frozenset:
    """Locals bound to ``ProcessPoolExecutor(...)`` in ``function``.

    Covers both ``pool = ProcessPoolExecutor()`` and the idiomatic
    ``with ProcessPoolExecutor() as pool:`` form.
    """
    names = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if imports.canonical(node.value.func) == _PROCESS_POOL:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if (
                    isinstance(item.context_expr, ast.Call)
                    and imports.canonical(item.context_expr.func) == _PROCESS_POOL
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    names.add(item.optional_vars.id)
    return frozenset(names)


@register
class SharedStateIntoWorkerRule(Rule):
    id = "shared-state-into-worker"
    family = "concurrency"
    severity = "warning"
    summary = "mutable shared state handed to a ProcessPoolExecutor worker"
    docs = __doc__

    def check(self, module: SourceModule, project) -> Iterator[Finding]:
        module_summary = project.modules.get(module.module or "")
        imports = ImportMap(module.tree)
        pool_cache: dict = {}
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map")
            ):
                continue
            if not self._is_process_pool(
                node.func.value, node, imports, module_summary, project, pool_cache
            ):
                continue
            for arg in node.args:
                problem = self._shared_arg(
                    arg, imports, module_summary, project, node
                )
                if problem is not None:
                    yield self.finding(module, arg, problem)

    def _is_process_pool(
        self, receiver, node, imports, module_summary, project, pool_cache
    ) -> bool:
        attr = self_attr(receiver)
        if attr is not None:
            summary = _enclosing_class_summary(node, module_summary)
            return (
                summary is not None
                and project.attr_type_of(summary, attr) == _PROCESS_POOL
            )
        if isinstance(receiver, ast.Name):
            for ancestor in ancestors(node):
                if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if ancestor not in pool_cache:
                        pool_cache[ancestor] = _local_process_pools(ancestor, imports)
                    return receiver.id in pool_cache[ancestor]
        return False

    def _shared_arg(
        self, arg, imports, module_summary, project, call
    ) -> Optional[str]:
        attr = self_attr(arg)
        is_bare_self = isinstance(arg, ast.Name) and arg.id == "self"
        if attr is not None or is_bare_self:
            summary = _enclosing_class_summary(call, module_summary)
            if summary is None or not project.lock_attrs_of(summary):
                return None
            spelled = "self" if is_bare_self else f"self.{attr}"
            return (
                f"{spelled} of lock-owning class {summary.qualname} is passed "
                "into a process-pool worker; locks and shared state do not "
                "survive pickling into a child process — send plain data instead"
            )
        if isinstance(arg, ast.Name):
            canonical = imports.canonical(arg)
            in_module = (
                module_summary is not None
                and arg.id in module_summary.mutable_globals
            )
            cross_module = (
                canonical is not None
                and "." in canonical
                and project.is_mutable_global(canonical)
            )
            if in_module or cross_module:
                origin = canonical if cross_module else arg.id
                return (
                    f"mutable module-level global {origin} is passed into a "
                    "process-pool worker; the child mutates a pickled copy the "
                    "parent never sees — pass a snapshot in and merge results "
                    "back explicitly"
                )
        return None
