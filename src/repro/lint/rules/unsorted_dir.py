"""unsorted-dir-iteration: directory listings must be sorted before use.

``os.listdir`` / ``glob.glob`` / ``Path.glob`` / ``Path.iterdir``
return entries in filesystem order — which differs across machines,
filesystems and even repeated runs after file churn.  Any result that
feeds iteration, hashing or concatenation (cache-key manifests, spool
merging, dataset assembly) must be wrapped in ``sorted()`` at the call
site so the order is part of the code, not the disk.

Bad::

    for path in spool.glob("spans-*.jsonl"):
        merge(path)

Good::

    for path in sorted(spool.glob("spans-*.jsonl")):
        merge(path)

The rule only recognizes a direct ``sorted(...)`` wrapper; if ordering
genuinely does not matter (e.g. deleting every file), suppress with
``# lint: disable=unsorted-dir-iteration``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import ImportMap, wrapped_in_call_to
from repro.lint.registry import Finding, Rule, register
from repro.lint.walker import SourceModule

#: Module-level listing functions, by canonical name.
_LISTING_FUNCTIONS = frozenset(
    {"glob.glob", "glob.iglob", "os.listdir", "os.scandir"}
)

#: Method names assumed to be pathlib-style directory listings.
_LISTING_METHODS = frozenset({"glob", "iterdir", "rglob"})

_SORT_WRAPPERS = frozenset({"sorted"})


@register
class UnsortedDirRule(Rule):
    id = "unsorted-dir-iteration"
    summary = "directory listing consumed without sorted()"
    docs = __doc__

    def check(self, module: SourceModule, project) -> Iterator[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.canonical(node.func)
            is_listing = name in _LISTING_FUNCTIONS or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _LISTING_METHODS
                and name not in _LISTING_FUNCTIONS
            )
            if not is_listing:
                continue
            if wrapped_in_call_to(node, _SORT_WRAPPERS):
                continue
            spelled = name or node.func.attr  # type: ignore[union-attr]
            yield self.finding(
                module,
                node,
                f"{spelled}() returns entries in filesystem order; wrap the "
                "call in sorted() so results do not depend on the disk",
            )
