"""condition-wait-without-predicate: waits must re-check, never poll.

``Condition.wait`` makes two promises people forget: it can wake
*spuriously* (so the guarded predicate must be re-checked in a loop),
and ``wait(timeout)`` returns whether it was notified (so a discarded
return value means the timeout was a disguised polling interval).  The
fingerprint server shipped exactly that bug: ``self._cond.wait(0.1)``
woke the worker ten times a second on an idle server just to re-check
an empty queue — wakeups that cost CPU, battery and tail latency and
that a plain notify would have made unnecessary.

Two forms are flagged, for receivers the phase-1 summary types as
``threading.Condition`` (``self`` attributes, including inherited
ones, and locals assigned ``threading.Condition()``):

* ``cond.wait(...)`` with no enclosing ``while`` in the same function
  — a single ``if``-guarded (or unguarded) wait misses spurious
  wakeups and missed-notify races;
* statement-level ``cond.wait(<number literal>)`` — a timed poll whose
  result is discarded.  Either drop the timeout and notify on every
  state change, or check the return value against a real deadline.

Bad::

    with self._cond:
        while not self._queue:
            self._cond.wait(0.1)      # 10 wakeups/s on an idle server

Good::

    with self._cond:
        while not self._queue:
            self._cond.wait()         # sleeps until notified
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.astutil import ImportMap, ancestors, self_attr
from repro.lint.registry import Finding, Rule, register
from repro.lint.walker import SourceModule

_CONDITION = "threading.Condition"


def _enclosing_class_name(node: ast.AST) -> Optional[str]:
    for ancestor in ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor.name
    return None


def _in_while_loop(node: ast.AST) -> bool:
    """True when an enclosing ``while`` exists within the same function."""
    for ancestor in ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        if isinstance(ancestor, ast.While):
            return True
    return False


def _local_conditions(function: ast.AST, imports: ImportMap) -> frozenset:
    """Local names assigned ``threading.Condition()`` in ``function``."""
    names = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if imports.canonical(node.value.func) == _CONDITION:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return frozenset(names)


@register
class ConditionWaitRule(Rule):
    id = "condition-wait-without-predicate"
    family = "concurrency"
    severity = "error"
    summary = "Condition.wait not re-checked in a loop, or used as a timed poll"
    docs = __doc__

    def check(self, module: SourceModule, project) -> Iterator[Finding]:
        module_summary = project.modules.get(module.module or "")
        imports = ImportMap(module.tree)
        local_cache: dict = {}
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "wait"
            ):
                continue
            receiver = self._condition_receiver(
                node, imports, module_summary, project, local_cache
            )
            if receiver is None:
                continue
            if not _in_while_loop(node):
                yield self.finding(
                    module,
                    node,
                    f"{receiver}.wait() is not re-checked in a while loop; "
                    "spurious wakeups and missed notifies make a bare (or "
                    "if-guarded) wait incorrect — loop on the predicate",
                )
                continue
            timeout = node.args[0] if node.args else None
            parent = getattr(node, "parent", None)
            discarded = isinstance(parent, ast.Expr)
            if (
                discarded
                and isinstance(timeout, ast.Constant)
                and isinstance(timeout.value, (int, float))
            ):
                yield self.finding(
                    module,
                    node,
                    f"{receiver}.wait({timeout.value}) with a discarded result "
                    "is a timed poll that wakes the thread for nothing; drop "
                    "the timeout and notify on every state change, or check "
                    "the return value against a deadline",
                )

    def _condition_receiver(
        self, node: ast.Call, imports, module_summary, project, local_cache
    ) -> Optional[str]:
        """Printable receiver when it is Condition-typed, else None."""
        attr = self_attr(node.func.value)
        if attr is not None:
            if module_summary is None:
                return None
            class_name = _enclosing_class_name(node)
            summary = (
                module_summary.classes.get(class_name)
                if class_name is not None
                else None
            )
            if summary is None:
                return None
            if project.attr_type_of(summary, attr) == _CONDITION:
                return f"self.{attr}"
            return None
        if isinstance(node.func.value, ast.Name):
            for ancestor in ancestors(node):
                if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if ancestor not in local_cache:
                        local_cache[ancestor] = _local_conditions(ancestor, imports)
                    if node.func.value.id in local_cache[ancestor]:
                        return node.func.value.id
                    return None
        return None
