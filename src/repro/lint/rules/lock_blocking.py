"""blocking-call-under-lock: never hold a lock across slow operations.

A lock held across a blocking call turns one slow operation into a
convoy: every thread that needs the lock — including request threads
that only wanted a queue append — stalls behind it.  In this codebase
the canonical mistake is running ``predict_proba`` (milliseconds of
BLAS) or file I/O inside the serve/obs critical sections that the
request path also takes.  Critical sections should compute *decisions*
under the lock and perform the slow work outside it.

Flagged inside any ``with self.<lock>:`` block of a lock-owning class:

* model inference and training (``.predict_proba()``, ``.predict()``,
  ``.fit()``);
* ``time.sleep`` and subprocess / network calls;
* ``open()`` — file I/O latency is unbounded on shared machines;
* ``.wait()`` on a ``threading.Event`` attribute and ``.join()`` on a
  ``threading.Thread`` attribute (typed via the phase-1 summary):
  both can block forever if the signalling thread needs the very lock
  being held.

``Condition.wait`` on the *held* condition is exempt — releasing the
lock while waiting is exactly what conditions are for.

Bad::

    with self._lock:
        probs = model.predict_proba(batch)   # queue stalls for the GEMM

Good::

    with self._lock:
        batch = self._take_batch_locked()
    probs = model.predict_proba(batch)
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.astutil import ImportMap, ancestors, held_self_locks, self_attr
from repro.lint.registry import Finding, Rule, register
from repro.lint.walker import SourceModule

#: Canonical function names that block on the outside world.
_BLOCKING_CALLS = frozenset(
    {
        "open",
        "time.sleep",
        "subprocess.Popen",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.run",
        "urllib.request.urlopen",
        "socket.create_connection",
        "requests.get",
        "requests.post",
        "requests.request",
    }
)

#: Method names that are slow on any receiver (model inference/training).
_SLOW_METHODS = frozenset({"fit", "predict", "predict_proba"})


def _enclosing_class_name(node: ast.AST) -> Optional[str]:
    for ancestor in ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor.name
    return None


@register
class BlockingCallUnderLockRule(Rule):
    id = "blocking-call-under-lock"
    family = "concurrency"
    severity = "warning"
    summary = "slow or indefinitely-blocking call made while holding a lock"
    docs = __doc__

    def check(self, module: SourceModule, project) -> Iterator[Finding]:
        module_summary = project.modules.get(module.module or "")
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            held = held_self_locks(node)
            if not held:
                continue
            description = self._blocking_description(
                node, held, imports, module_summary, project
            )
            if description is None:
                continue
            locks = ", ".join(f"self.{name}" for name in sorted(held))
            yield self.finding(
                module,
                node,
                f"{description} while holding {locks}; move the slow work "
                "outside the critical section (compute the decision under "
                "the lock, do the work after releasing it)",
            )

    def _blocking_description(
        self, node: ast.Call, held: frozenset, imports, module_summary, project
    ) -> Optional[str]:
        canonical = imports.canonical(node.func)
        if canonical in _BLOCKING_CALLS:
            return f"{canonical}() blocks"
        if not isinstance(node.func, ast.Attribute):
            return None
        method = node.func.attr
        if method in _SLOW_METHODS:
            return f".{method}() runs model inference/training"
        if method not in ("wait", "join"):
            return None
        attr = self_attr(node.func.value)
        if attr is None or module_summary is None:
            return None
        class_name = _enclosing_class_name(node)
        summary = (
            module_summary.classes.get(class_name) if class_name is not None else None
        )
        if summary is None:
            return None
        attr_type = project.attr_type_of(summary, attr)
        if method == "wait" and attr_type == "threading.Event":
            return f"self.{attr}.wait() can block indefinitely"
        if method == "join" and attr_type == "threading.Thread":
            return f"self.{attr}.join() can block indefinitely"
        return None
