"""Built-in lint rules — importing this package registers all of them."""

from __future__ import annotations

#: Packages whose results must be a pure function of (spec, seed).  Used
#: by the order-sensitivity rules; the obs/viz/lint layers only render
#: or measure and are deliberately out of scope.  (Defined before the
#: rule imports below because rule modules import it.)
DETERMINISTIC_PACKAGES = (
    "repro.cache",
    "repro.core",
    "repro.defenses",
    "repro.engine",
    "repro.experiments",
    "repro.isolation",
    "repro.ml",
    "repro.sim",
    "repro.stats",
    "repro.timers",
    "repro.tracing",
    "repro.workload",
)

from repro.lint.rules import (  # noqa: E402, F401  (registration side effects)
    cond_wait,
    env_hash,
    lock_blocking,
    mutable_default,
    set_iteration,
    thread_lifecycle,
    unlocked_write,
    unseeded_rng,
    unsorted_dir,
    wall_clock,
    worker_state,
)
