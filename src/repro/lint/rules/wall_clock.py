"""wall-clock-in-sim: simulated components must not read the host clock.

The simulator's whole contract is that *simulated* nanoseconds are the
only time that exists: traces replay bit-identically regardless of host
load, and a cached trace equals a fresh one.  A ``time.time()`` (or
``perf_counter`` / ``datetime.now``) reachable from the simulation,
timer-model, defense or workload layers couples results to the host
clock.  The observability and runner layers legitimately measure wall
time, so the rule only fires inside :data:`CHECKED_PACKAGES`.

Bad (in ``repro.sim``)::

    import time
    deadline = time.time() + budget_s

Good::

    deadline_ns = now_ns + budget_ns   # simulated clock, threaded in
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import ImportMap
from repro.lint.registry import Finding, Rule, register
from repro.lint.walker import SourceModule

#: Packages where host-clock access is forbidden.  The obs, viz,
#: engine and experiment-runner layers are allowlisted by omission —
#: they time *stages*, never simulated behaviour.
CHECKED_PACKAGES = (
    "repro.defenses",
    "repro.sim",
    "repro.timers",
    "repro.workload",
)

#: Canonical names that read the host clock.
_CLOCK_NAMES = frozenset(
    {
        "datetime.date.today",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.time",
        "time.time_ns",
    }
)


@register
class WallClockRule(Rule):
    id = "wall-clock-in-sim"
    summary = "host-clock read inside a simulated-time-only package"
    docs = __doc__

    def check(self, module: SourceModule, project) -> Iterator[Finding]:
        if not module.in_package(*CHECKED_PACKAGES):
            return
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            # Only the outermost node of a dotted chain should report
            # (time.time is one Attribute over one Name; skip the Name).
            parent = getattr(node, "parent", None)
            if isinstance(parent, ast.Attribute):
                continue
            name = imports.canonical(node)
            if name in _CLOCK_NAMES:
                yield self.finding(
                    module,
                    node,
                    f"{name} reads the host clock inside {module.module}; "
                    "simulated components must derive all times from the "
                    "simulated-nanosecond timeline",
                )
