"""env-dependent-hash: builtin hash() must not feed control flow or keys.

Since PEP 456, ``hash()`` of ``str`` / ``bytes`` is salted with a
per-process seed (``PYTHONHASHSEED``), so ``hash("nytimes.com") % n``
lands in a different bucket in every worker process.  Sharding, cache
keying and any branch on a hash value must use a *stable* digest
(``hashlib``, or the repo's content-addressed ``cache_key``) instead.

Bad::

    shard = hash(site.name) % n_shards
    if hash(label) & 1:
        ...

Good::

    digest = hashlib.sha256(site.name.encode()).digest()
    shard = int.from_bytes(digest[:8], "big") % n_shards

The check is best-effort and syntactic: it fires when a ``hash(...)``
call feeds arithmetic, a comparison, a subscript, a dict key, a
branch condition or a sort key, and when the argument is a visible
``str`` / ``bytes`` value.  ``__hash__`` implementations are exempt
(delegating to ``hash()`` there is the protocol).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.astutil import ancestors, enclosing_function
from repro.lint.registry import Finding, Rule, register
from repro.lint.walker import SourceModule

_STRINGY = (ast.JoinedStr,)


def _is_str_or_bytes_arg(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (str, bytes))
    if isinstance(node, _STRINGY):
        return True
    if isinstance(node, ast.BinOp):  # "a" + suffix, prefix % args, ...
        return _is_str_or_bytes_arg(node.left) or _is_str_or_bytes_arg(node.right)
    if isinstance(node, ast.Call):  # str(x), x.encode(), f"{x}".join(...)
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("bytes", "repr", "str"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in ("encode", "format", "join"):
            return True
    return False


def _sink(node: ast.AST) -> Optional[str]:
    """Describe the order/control-sensitive sink ``node`` flows into."""
    child = node
    for ancestor in ancestors(node):
        if isinstance(ancestor, (ast.BinOp, ast.UnaryOp, ast.AugAssign)):
            return "arithmetic"
        if isinstance(ancestor, ast.Compare):
            return "a comparison"
        if isinstance(ancestor, ast.Subscript) and ancestor.slice is child:
            return "a subscript"
        if isinstance(ancestor, ast.Dict) and child in ancestor.keys:
            return "a dict key"
        if isinstance(ancestor, (ast.If, ast.IfExp, ast.While)) and ancestor.test is child:
            return "a branch condition"
        if isinstance(ancestor, ast.keyword) and ancestor.arg == "key":
            return "a sort key"
        if isinstance(ancestor, ast.stmt):
            return None
        child = ancestor
    return None


@register
class EnvHashRule(Rule):
    id = "env-dependent-hash"
    summary = "PYTHONHASHSEED-salted hash() feeding control flow or keys"
    docs = __doc__

    def check(self, module: SourceModule, project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
                and node.args
            ):
                continue
            function = enclosing_function(node)
            if function is not None and function.name == "__hash__":
                continue
            sink = _sink(node)
            stringy = _is_str_or_bytes_arg(node.args[0])
            if sink is None and not stringy:
                continue
            reason = f"flows into {sink}" if sink else "is applied to str/bytes"
            yield self.finding(
                module,
                node,
                f"hash() is salted per process by PYTHONHASHSEED and {reason}; "
                "use a stable digest (hashlib) instead",
            )
