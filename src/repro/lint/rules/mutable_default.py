"""mutable-default-arg: default values must not be mutable objects.

A mutable default is evaluated once at ``def`` time and shared by every
call, so state leaks between calls — and, in this codebase, between
*experiments*: a list default that accumulates batches would make the
second run of a spec differ from the first with the same seed.

Bad::

    def schedule(batches=[]):
        batches.append(...)

Good::

    def schedule(batches=None):
        batches = [] if batches is None else batches

(For dataclasses use ``field(default_factory=list)``, which the rule
does not flag — the factory runs per instance.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import dotted_name
from repro.lint.registry import Finding, Rule, register
from repro.lint.walker import SourceModule

#: Constructor calls whose results are shared-mutable as defaults.
_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "bytearray",
        "collections.OrderedDict",
        "collections.defaultdict",
        "collections.deque",
        "dict",
        "list",
        "set",
    }
)

_MUTABLE_LITERALS = (ast.Dict, ast.DictComp, ast.List, ast.ListComp, ast.Set, ast.SetComp)


def _is_mutable(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in _MUTABLE_CONSTRUCTORS
    return False


@register
class MutableDefaultRule(Rule):
    id = "mutable-default-arg"
    summary = "mutable object used as a function argument default"
    docs = __doc__

    def check(self, module: SourceModule, project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if _is_mutable(default):
                    yield self.finding(
                        module,
                        default,
                        "mutable default is evaluated once and shared by every "
                        "call; default to None and build the object inside",
                    )
