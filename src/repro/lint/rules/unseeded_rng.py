"""unseeded-rng: every random stream must start from an explicit seed.

One unseeded generator anywhere in the trace path and two runs of the
same ``(spec, seed)`` diverge — which silently voids the parallel ==
serial and profiled == unprofiled bit-identity guarantees the tables
rest on.  The rule flags three spellings:

* ``np.random.default_rng()`` with no arguments (fresh OS entropy);
* the legacy global numpy API (``np.random.seed`` / ``np.random.rand``
  / ``np.random.normal`` ...), which mutates hidden process-wide state
  that parallel workers do not share;
* the stdlib global ``random`` module (``random.random()``,
  ``random.shuffle()``, ...), plus ``random.Random()`` /
  ``random.SystemRandom()`` without a seed.

Bad::

    rng = np.random.default_rng()
    jitter = np.random.normal(0.0, 1.0)

Good::

    rng = np.random.default_rng(spec.seed)
    jitter = rng.normal(0.0, 1.0)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import ImportMap, call_has_arguments
from repro.lint.registry import Finding, Rule, register
from repro.lint.walker import SourceModule

#: Legacy numpy.random module-level functions (hidden global state).
_NUMPY_LEGACY = frozenset(
    {
        "beta",
        "binomial",
        "bytes",
        "chisquare",
        "choice",
        "dirichlet",
        "exponential",
        "gamma",
        "geometric",
        "get_state",
        "gumbel",
        "integers",
        "laplace",
        "lognormal",
        "multinomial",
        "multivariate_normal",
        "normal",
        "pareto",
        "permutation",
        "poisson",
        "rand",
        "randint",
        "randn",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "seed",
        "set_state",
        "shuffle",
        "standard_cauchy",
        "standard_exponential",
        "standard_gamma",
        "standard_normal",
        "standard_t",
        "uniform",
        "vonmises",
        "weibull",
    }
)

#: stdlib ``random`` module-level functions (one hidden Mersenne state).
_STDLIB_GLOBAL = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)


@register
class UnseededRngRule(Rule):
    id = "unseeded-rng"
    summary = "random source created or used without an explicit seed"
    docs = __doc__

    def check(self, module: SourceModule, project) -> Iterator[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.canonical(node.func)
            if name is None:
                continue
            if name == "numpy.random.default_rng" and not call_has_arguments(node):
                yield self.finding(
                    module,
                    node,
                    "np.random.default_rng() without a seed draws OS entropy; "
                    "pass a seed or thread an existing Generator through",
                )
            elif name == "random.Random" and not call_has_arguments(node):
                yield self.finding(
                    module,
                    node,
                    "random.Random() without a seed is nondeterministic; "
                    "pass an explicit seed",
                )
            elif name == "random.SystemRandom":
                yield self.finding(
                    module,
                    node,
                    "random.SystemRandom draws OS entropy and can never be "
                    "seeded; use a seeded Generator instead",
                )
            elif name.startswith("numpy.random.") and name.rpartition(".")[2] in _NUMPY_LEGACY:
                yield self.finding(
                    module,
                    node,
                    f"legacy global numpy RNG call {name}(); use a seeded "
                    "np.random.Generator threaded through the call chain",
                )
            elif name.startswith("random.") and name.rpartition(".")[2] in _STDLIB_GLOBAL:
                yield self.finding(
                    module,
                    node,
                    f"global stdlib RNG call {name}(); use a seeded "
                    "random.Random (or numpy Generator) instance",
                )
