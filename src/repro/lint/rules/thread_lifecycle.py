"""nondaemon-unjoined-thread: every thread needs an exit plan.

A ``threading.Thread`` that is neither a daemon nor joined has no
owner at shutdown: interpreter exit blocks on it, test processes hang,
and a crash in the main thread leaves it running against torn-down
state.  The project convention is explicit: workers that must finish
are stored on ``self`` and joined in a ``stop()``/``close()`` method;
fire-and-forget helpers say so with ``daemon=True``.

Flagged: any ``threading.Thread(...)`` construction that neither

* passes a truthy ``daemon=`` keyword, nor
* is joined — a ``.join(`` call on the attribute or local the thread
  is bound to, anywhere in the same class (for ``self.x = Thread``)
  or the same function (for ``t = Thread``).

Bad::

    def start(self):
        self._worker = threading.Thread(target=self._run)
        self._worker.start()                 # nobody ever joins it

Good::

    def start(self):
        self._worker = threading.Thread(target=self._run)
        self._worker.start()

    def stop(self):
        ...
        worker.join()
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.astutil import ImportMap, ancestors, self_attr
from repro.lint.registry import Finding, Rule, register
from repro.lint.walker import SourceModule


def _truthy_daemon(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "daemon":
            if isinstance(keyword.value, ast.Constant):
                return bool(keyword.value.value)
            return True  # computed daemon flag: give the benefit of the doubt
    return False


def _bound_name(call: ast.Call) -> Optional[ast.AST]:
    """The assignment target the Thread is bound to, if any.

    Sees through list/tuple literals and comprehensions, so
    ``threads = [Thread(...) for i in range(n)]`` binds to ``threads``
    and a later ``for t in threads: t.join()`` sweep satisfies the rule.
    """
    node: ast.AST = call
    parent = getattr(node, "parent", None)
    while isinstance(parent, (ast.List, ast.Tuple, ast.ListComp, ast.comprehension)):
        node = parent
        parent = getattr(node, "parent", None)
    if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
        return parent.targets[0]
    if isinstance(parent, ast.AugAssign):  # threads += [Thread(...) ...]
        return parent.target
    return None


def _scope_of(node: ast.AST, want_class: bool) -> Optional[ast.AST]:
    for ancestor in ancestors(node):
        if want_class and isinstance(ancestor, ast.ClassDef):
            return ancestor
        if not want_class and isinstance(
            ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return ancestor
    return None


def _joins_in(scope: ast.AST, attr: Optional[str], local: Optional[str]) -> bool:
    """True when ``scope`` contains ``<binding>.join(...)`` somewhere.

    The check is deliberately permissive about *where* the join happens
    (any method of the class / anywhere in the function, including a
    ``for t in threads: t.join()`` sweep over a list the local was
    appended to) — the rule targets threads with *no* join at all.
    """
    for node in ast.walk(scope):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
        ):
            continue
        receiver = node.func.value
        if attr is not None and self_attr(receiver) == attr:
            return True
        if local is not None and isinstance(receiver, ast.Name):
            return True  # a local `.join()` loop counts for local threads
    return False


@register
class ThreadLifecycleRule(Rule):
    id = "nondaemon-unjoined-thread"
    family = "concurrency"
    severity = "warning"
    summary = "non-daemon Thread that is never joined"
    docs = __doc__

    def check(self, module: SourceModule, project) -> Iterator[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if imports.canonical(node.func) != "threading.Thread":
                continue
            if _truthy_daemon(node):
                continue
            target = _bound_name(node)
            attr = self_attr(target) if target is not None else None
            local = (
                target.id
                if isinstance(target, ast.Name)
                else None
            )
            if attr is not None:
                scope = _scope_of(node, want_class=True)
            else:
                scope = _scope_of(node, want_class=False)
            if scope is not None and _joins_in(scope, attr, local):
                continue
            binding = (
                f"self.{attr}" if attr is not None else (local or "the thread")
            )
            yield self.finding(
                module,
                node,
                f"threading.Thread bound to {binding} is neither daemon=True "
                "nor joined; join it in a stop()/teardown path or mark it a "
                "daemon so shutdown cannot hang on it",
            )
