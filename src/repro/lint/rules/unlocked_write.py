"""unlocked-shared-write: lock-owning classes must guard their writes.

A class that owns a ``threading.Lock``/``Condition`` has declared that
its mutable state is shared between threads — that is the only reason
to pay for a lock.  Every write to that state outside a ``with
self.<lock>:`` block is then a data race: the batching server's worker
and its callers, or the metrics registry's flushing threads, can
interleave mid-update and corrupt the structure or lose writes.  The
lock-ownership question is answered by the phase-1 project summary, so
a subclass defined in another file inherits the discipline of its
lock-owning base.

The rule flags attribute assignments (``self.x = ...``,
``self.x[k] = ...``, ``self.x += ...``) and calls to known mutating
methods (``self.x.append(...)``, ``.pop()``, ``.update()``, ...) in
any method of a lock-owning class, unless a ``with self.<lock>:``
block encloses the write.  Exempt: ``__init__`` and friends (the
object is not yet shared) and methods whose name ends in ``_locked``
(the project convention for "caller holds the lock" helpers).

Bad::

    class Registry:
        def __init__(self):
            self._lock = threading.Lock()
            self._entries = {}

        def add(self, name, value):
            self._entries[name] = value          # racy

Good::

    def add(self, name, value):
        with self._lock:
            self._entries[name] = value
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.astutil import ancestors, held_self_locks, self_attr
from repro.lint.registry import Finding, Rule, register
from repro.lint.walker import SourceModule

#: Methods whose construction guarantees exclusive access: the object
#: is being built (or rebuilt for pickling) before it is shared.
_EXEMPT_METHODS = frozenset(
    {
        "__init__",
        "__new__",
        "__post_init__",
        "__getstate__",
        "__setstate__",
        "__reduce__",
        "__copy__",
        "__deepcopy__",
        "__del__",
    }
)

#: Attribute method names that mutate common containers in place.
_MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "rotate",
        "setdefault",
        "sort",
        "update",
    }
)


def _enclosing_class(node: ast.AST) -> Optional[ast.ClassDef]:
    for ancestor in ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor
    return None


def _enclosing_method(node: ast.AST, class_node: ast.ClassDef) -> Optional[str]:
    method = None
    for ancestor in ancestors(node):
        if ancestor is class_node:
            break
        if (
            isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef))
            and getattr(ancestor, "parent", None) is class_node
        ):
            method = ancestor.name
    return method


@register
class UnlockedSharedWriteRule(Rule):
    id = "unlocked-shared-write"
    family = "concurrency"
    severity = "error"
    summary = "shared attribute of a lock-owning class mutated outside its lock"
    docs = __doc__

    def check(self, module: SourceModule, project) -> Iterator[Finding]:
        module_summary = project.modules.get(module.module or "")
        if module_summary is None or not module_summary.classes:
            return
        for node in ast.walk(module.tree):
            written = self._written_attr(node)
            if written is None:
                continue
            attr, write_node = written
            class_node = _enclosing_class(write_node)
            if class_node is None:
                continue
            summary = module_summary.classes.get(class_node.name)
            if summary is None:
                continue
            lock_attrs = project.lock_attrs_of(summary)
            if not lock_attrs:
                continue
            method = _enclosing_method(write_node, class_node)
            if method is None or method in _EXEMPT_METHODS:
                continue
            if method.endswith("_locked"):
                continue  # convention: caller already holds the lock
            if held_self_locks(write_node) & lock_attrs:
                continue
            locks = "/".join(f"self.{name}" for name in sorted(lock_attrs))
            owner = summary.qualname if summary.module else class_node.name
            yield self.finding(
                module,
                write_node,
                f"self.{attr} is mutated in {owner}.{method}() without "
                f"holding {locks}; wrap the write in `with {locks.split('/')[0]}:` "
                "or suffix the method `_locked` if the caller holds it",
            )

    @staticmethod
    def _written_attr(node: ast.AST):
        """``(attr, node)`` when ``node`` writes ``self.attr``, else None."""
        targets: list = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                attr = self_attr(node.func.value)
                if attr is not None:
                    return attr, node
            return None
        for target in targets:
            base = target
            if isinstance(base, ast.Subscript):
                base = base.value
            attr = self_attr(base)
            if attr is not None:
                return attr, node
        return None
