"""set-iteration-order: sets must not feed order-sensitive sinks.

Set iteration order depends on insertion history and on the per-process
string hash seed (``PYTHONHASHSEED``), so looping over a set — or
materializing one with ``list()`` / ``tuple()`` — produces a different
order in every process.  In the deterministic packages (sim, engine,
ml, ...) that is enough to flip an event-merge order or a feature
column order and silently change a table.  Membership tests, ``len()``,
set algebra and ``sorted(set(...))`` are all fine; it is only *ordered
consumption* of an unordered container that fires.

Bad (in a deterministic package)::

    for site in {"nytimes", "cnn", "bbc"}:
        schedule(site)
    columns = list(set(labels))

Good::

    for site in sorted({"nytimes", "cnn", "bbc"}):
        schedule(site)
    columns = sorted(set(labels))

The check is syntactic: it recognizes set literals, set comprehensions
and ``set()`` / ``frozenset()`` calls consumed directly.  Sets bound to
a variable first are not tracked — name variables so the reader can see
the ordering contract, and sort at the consumption point.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint import rules as _rules
from repro.lint.astutil import ImportMap, dotted_name
from repro.lint.registry import Finding, Rule, register
from repro.lint.walker import SourceModule

#: Calls that materialize their argument into an ordered sequence.
_ORDERING_CONSUMERS = frozenset({"enumerate", "iter", "list", "tuple"})


def _is_set_expression(node: ast.AST, imports: ImportMap) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = imports.canonical(node.func)
        return name in ("set", "frozenset")
    return False


@register
class SetIterationRule(Rule):
    id = "set-iteration-order"
    summary = "set consumed in an order-sensitive way in a deterministic module"
    docs = __doc__

    def check(self, module: SourceModule, project) -> Iterator[Finding]:
        if not module.in_package(*_rules.DETERMINISTIC_PACKAGES):
            return
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            sink = self._order_sensitive_sink(node, imports)
            if sink is not None:
                yield self.finding(
                    module,
                    node,
                    f"set {sink} is order-sensitive but set iteration order "
                    "depends on PYTHONHASHSEED; wrap the set in sorted()",
                )

    def _order_sensitive_sink(
        self, node: ast.AST, imports: ImportMap
    ) -> Optional[str]:
        """Describe the sink when ``node`` consumes a set in order."""
        if isinstance(node, ast.For) and _is_set_expression(node.iter, imports):
            return "iterated by a for loop"
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            if any(
                _is_set_expression(gen.iter, imports) for gen in node.generators
            ):
                return "iterated by a comprehension"
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if (
                name in _ORDERING_CONSUMERS
                and node.args
                and _is_set_expression(node.args[0], imports)
            ):
                return f"materialized by {name}()"
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args
                and _is_set_expression(node.args[0], imports)
            ):
                return "concatenated by str.join()"
        return None
