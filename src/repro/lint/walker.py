"""File discovery, parsing and module-name resolution for the linter.

The walker turns a list of paths into :class:`SourceModule` objects: the
parsed AST (with parent back-links on every node), the raw source lines
(for suppression comments) and the dotted module name, which rules use
for scoping — ``wall-clock-in-sim`` only fires inside ``repro.sim`` and
friends.

Module names are resolved by following the ``__init__.py`` chain upward
from the file, so ``src/repro/sim/machine.py`` becomes
``repro.sim.machine`` regardless of the working directory.  A fixture
file can claim any module identity with a pragma comment near the top::

    # lint: module=repro.sim.fixture

Directory discovery skips ``__pycache__`` and ``fixtures`` directories
(the latter hold intentionally-broken lint test corpora); explicitly
listed files are always linted.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.lint.registry import Finding

#: Directory names skipped during recursive discovery.
EXCLUDED_DIR_NAMES = frozenset(
    {"__pycache__", ".git", ".venv", "venv", "build", "dist", "fixtures"}
)

#: ``# lint: module=<dotted.name>`` — looked for in the first few lines.
_MODULE_PRAGMA = re.compile(r"#\s*lint:\s*module=([A-Za-z_][\w.]*)")
_PRAGMA_SCAN_LINES = 10


@dataclass
class SourceModule:
    """One parsed source file, ready for rule checks."""

    path: pathlib.Path
    display_path: str
    module: Optional[str]
    tree: Optional[ast.Module]
    lines: list[str] = field(default_factory=list)
    parse_error: Optional[Finding] = None

    def in_package(self, *packages: str) -> bool:
        """True when the module lives in (or under) any of ``packages``."""
        if self.module is None:
            return False
        return any(
            self.module == package or self.module.startswith(package + ".")
            for package in packages
        )


def discover(paths: Sequence[str]) -> Iterator[pathlib.Path]:
    """Yield Python files under ``paths`` in a deterministic order.

    Files are yielded verbatim (even inside excluded directories — an
    explicit argument always wins); directories are walked recursively
    with :data:`EXCLUDED_DIR_NAMES` pruned, in sorted order.  Pruning
    only considers directories *below* the walked root, so explicitly
    passing a directory that lives inside an excluded one (a fixture
    package, say) still lints its contents.
    """
    seen: set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        if path.is_file():
            candidates: Iterator[pathlib.Path] = iter([path])
        else:
            candidates = (
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not (EXCLUDED_DIR_NAMES & set(candidate.relative_to(path).parts[:-1]))
            )
        for candidate in candidates:
            marker = candidate.resolve()
            if marker not in seen:
                seen.add(marker)
                yield candidate


def resolve_module_name(path: pathlib.Path) -> Optional[str]:
    """Dotted module name via the ``__init__.py`` chain, or None."""
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else None


def _pragma_module(lines: Sequence[str]) -> Optional[str]:
    for line in lines[:_PRAGMA_SCAN_LINES]:
        match = _MODULE_PRAGMA.search(line)
        if match:
            return match.group(1)
    return None


def annotate_parents(tree: ast.Module) -> None:
    """Attach a ``parent`` attribute to every node below ``tree``."""
    tree.parent = None  # type: ignore[attr-defined]
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]


def load_module(path: pathlib.Path) -> SourceModule:
    """Parse ``path`` into a :class:`SourceModule`.

    Syntax errors do not raise: they come back as a ``syntax-error``
    finding in :attr:`SourceModule.parse_error` so one broken file does
    not hide the rest of the report.
    """
    display = str(path)
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as error:
        finding = Finding(
            rule="syntax-error",
            path=display,
            line=error.lineno or 1,
            col=(error.offset or 1) - 1,
            message=f"file does not parse: {error.msg}",
        )
        return SourceModule(
            path=path,
            display_path=display,
            module=None,
            tree=None,
            lines=lines,
            parse_error=finding,
        )
    annotate_parents(tree)
    module = _pragma_module(lines) or resolve_module_name(path)
    return SourceModule(
        path=path, display_path=display, module=module, tree=tree, lines=lines
    )
