"""``python -m repro.lint`` — direct entry point used by the CI job."""

from __future__ import annotations

import sys

from repro.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
