"""The ``biggerfish lint`` subcommand (also ``python -m repro.lint``).

Usage::

    biggerfish lint                       # lint src/ and tests/
    biggerfish lint src/repro/sim         # specific paths
    biggerfish lint --format json         # machine-readable output
    biggerfish lint --format sarif        # SARIF 2.1.0 for code scanning
    biggerfish lint --select concurrency  # one whole rule family
    biggerfish lint --select unseeded-rng,wall-clock-in-sim
    biggerfish lint --ignore env-dependent-hash
    biggerfish lint --baseline .lint-baseline.json
    biggerfish lint --write-baseline      # grandfather current findings
    biggerfish lint --list-rules
    biggerfish lint --explain unseeded-rng

Exit codes: 0 clean (inline-suppressed and baselined findings do not
fail the run), 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional, Sequence

from repro.lint import Baseline, all_rules, get_rule, lint_paths
from repro.lint.reporters import render_json, render_sarif, render_text
from repro.lint.suppress import DEFAULT_BASELINE_NAME

#: Directories linted when no path argument is given.
DEFAULT_PATHS = ("src", "tests")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="biggerfish lint",
        description=(
            "AST-based determinism & concurrency-safety linter: seeded-RNG "
            "plumbing, simulated-time-only simulation code, order-stable "
            "iteration, and project-wide lock discipline."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text); sarif emits SARIF 2.1.0",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids or families (determinism, "
        "concurrency) to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids or families to skip",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file of grandfathered findings "
        f"(default: {DEFAULT_BASELINE_NAME} when it exists)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        default=None,
        help="print one rule's documentation and exit",
    )
    return parser


def _split_ids(values: Optional[Sequence[str]]) -> Optional[list[str]]:
    if values is None:
        return None
    ids = []
    for value in values:
        ids.extend(part.strip() for part in value.split(",") if part.strip())
    return ids


def _resolve_baseline(args: argparse.Namespace) -> tuple[pathlib.Path, Optional[Baseline]]:
    """The baseline path in effect plus its loaded contents (if present)."""
    path = pathlib.Path(args.baseline or DEFAULT_BASELINE_NAME)
    if not path.exists():
        if args.baseline and not args.write_baseline:
            raise FileNotFoundError(f"baseline file not found: {path}")
        return path, None
    return path, Baseline.load(path)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(
                f"{rule.id:32} [{rule.family}/{rule.severity}] {rule.summary}"
            )
        return 0
    if args.explain is not None:
        try:
            rule = get_rule(args.explain)
        except KeyError:
            print(f"biggerfish lint: unknown rule {args.explain!r}", file=sys.stderr)
            return 2
        print(f"{rule.id} — {rule.summary}\n")
        print(rule.docs.strip())
        return 0
    paths = args.paths or [path for path in DEFAULT_PATHS if pathlib.Path(path).is_dir()]
    if not paths:
        print("biggerfish lint: no paths given and no default directory found",
              file=sys.stderr)
        return 2
    try:
        baseline_path, baseline = _resolve_baseline(args)
        run = lint_paths(
            paths,
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
            baseline=None if args.write_baseline else baseline,
        )
    except KeyError as error:
        print(
            f"biggerfish lint: unknown rule or family {error.args[0]!r}",
            file=sys.stderr,
        )
        return 2
    except (FileNotFoundError, ValueError) as error:
        print(f"biggerfish lint: {error}", file=sys.stderr)
        return 2
    if args.write_baseline:
        Baseline.write(baseline_path, run.findings)
        print(f"wrote {len(run.findings)} finding(s) to {baseline_path}")
        return 0
    if args.format == "json":
        report = render_json(run)
    elif args.format == "sarif":
        report = render_sarif(run)
    else:
        report = render_text(run)
    if report:
        print(report)
    return 0 if run.ok else 1


if __name__ == "__main__":
    sys.exit(main())
