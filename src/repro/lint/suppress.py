"""Inline suppressions and the checked-in findings baseline.

Inline suppression: append ``# lint: disable=<rule>`` to the offending
line (comma-separate several ids; ``disable=all`` silences every rule
on that line)::

    stamp = time.time()  # lint: disable=wall-clock-in-sim

Baseline: a JSON file of grandfathered findings, matched by
``rule:path:line`` fingerprint.  ``biggerfish lint --write-baseline``
records the current findings; subsequent runs report them separately
and exit 0.  The repository ships an **empty** baseline
(:data:`DEFAULT_BASELINE_NAME`) — every pre-existing violation was
fixed instead of grandfathered — so any entry appearing in it on a pull
request is a reviewable regression.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Iterable, Sequence

from repro.lint.registry import Finding

#: Conventional baseline filename, looked up in the working directory.
DEFAULT_BASELINE_NAME = ".lint-baseline.json"

_DISABLE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)")

_BASELINE_VERSION = 1


def suppressed_rules(lines: Sequence[str]) -> dict[int, frozenset]:
    """Map 1-based line numbers to the rule ids disabled on that line."""
    disabled: dict[int, frozenset] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _DISABLE.search(line)
        if match:
            ids = frozenset(part.strip() for part in match.group(1).split(","))
            disabled[lineno] = ids
    return disabled


class Baseline:
    """Set of grandfathered finding fingerprints."""

    def __init__(self, fingerprints: Iterable[str] = ()):
        self.fingerprints = frozenset(fingerprints)

    def __len__(self) -> int:
        return len(self.fingerprints)

    def contains(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.fingerprints

    @classmethod
    def load(cls, path: pathlib.Path) -> "Baseline":
        """Read a baseline file; raises ValueError on a malformed one."""
        payload = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(payload, dict) or "findings" not in payload:
            raise ValueError(f"{path}: not a lint baseline (missing 'findings')")
        fingerprints = []
        for entry in payload["findings"]:
            try:
                fingerprints.append(f"{entry['rule']}:{entry['path']}:{entry['line']}")
            except (TypeError, KeyError) as error:
                raise ValueError(f"{path}: malformed baseline entry {entry!r}") from error
        return cls(fingerprints)

    @staticmethod
    def write(path: pathlib.Path, findings: Sequence[Finding]) -> None:
        """Write ``findings`` as the new baseline for ``path``."""
        payload = {
            "version": _BASELINE_VERSION,
            "findings": [
                {
                    "rule": finding.rule,
                    "path": finding.path.replace("\\", "/"),
                    "line": finding.line,
                    "message": finding.message,
                }
                for finding in sorted(
                    findings, key=lambda f: (f.path, f.line, f.rule)
                )
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
