"""Unified observability: tracing spans, metrics, and run profiling.

The reproduction's central claim is an observability story — the paper's
eBPF tracer attributes >99 % of attacker-visible execution gaps to
concrete kernel activity (§5.2).  This package lets the reproduction
observe *itself* with the same rigor it applies to the simulated kernel:

* :mod:`repro.obs.spans` — nested, thread/process-aware ``with
  span("ml.train", fold=3):`` context managers recording wall time, CPU
  time and peak RSS, spooled as JSONL events that merge correctly from
  ``ProcessPoolExecutor`` workers;
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms (``engine.cache.hits``, ``sim.events_processed``,
  ``ml.epoch_seconds``) with cheap no-op defaults while disabled;
* :mod:`repro.obs.export` — spool merging, the ``profile.jsonl`` event
  log, a self-rendered SVG timeline (via :mod:`repro.viz.svg`) and the
  summary block folded into ``run_manifest.json``;
* :mod:`repro.obs.report` — the ``biggerfish report <run-dir>`` CLI
  rendering per-stage time/memory/cache breakdowns and slowest spans.

Profiling is **off by default** and costs nothing while off:
``span(...)`` hands back a shared no-op context manager and the metric
accessors hand back shared no-op instruments.  :func:`enable` turns both
facilities on, pointed at a spool directory, and exports
``BIGGERFISH_PROFILE_DIR`` so worker processes (forked *or* spawned)
activate themselves on first use.  Instrumentation never touches RNG
streams or results — a profiled run produces bit-identical tables.
"""

from __future__ import annotations

import os
import pathlib
from typing import Optional

from repro.obs import metrics
from repro.obs.metrics import counter, flush_metrics, gauge, histogram
from repro.obs.spans import PROFILE_DIR_ENV_VAR, SpanTracer, span

__all__ = [
    "PROFILE_DIR_ENV_VAR",
    "SpanTracer",
    "counter",
    "disable",
    "enable",
    "enabled",
    "flush_metrics",
    "gauge",
    "histogram",
    "metrics",
    "span",
]


def enabled() -> bool:
    """True when profiling is active in this process."""
    from repro.obs import spans as _spans

    return _spans.active_tracer() is not None


def enable(spool_dir: os.PathLike) -> pathlib.Path:
    """Activate spans and metrics, spooling events under ``spool_dir``.

    Also exports :data:`PROFILE_DIR_ENV_VAR` so that worker processes —
    whether forked mid-run or spawned fresh — pick the same spool up
    lazily on their first instrumented call.  Returns the spool path.
    """
    from repro.obs import spans as _spans

    spool = pathlib.Path(spool_dir)
    spool.mkdir(parents=True, exist_ok=True)
    os.environ[PROFILE_DIR_ENV_VAR] = str(spool)
    _spans.activate(spool)
    metrics.activate(spool)
    return spool


def disable() -> None:
    """Deactivate profiling and clear the inherited environment knob."""
    from repro.obs import spans as _spans

    os.environ.pop(PROFILE_DIR_ENV_VAR, None)
    _spans.deactivate()
    metrics.deactivate()


def spool_dir() -> Optional[pathlib.Path]:
    """The active spool directory, or None while disabled."""
    from repro.obs import spans as _spans

    tracer = _spans.active_tracer()
    return tracer.spool_dir if tracer is not None else None
