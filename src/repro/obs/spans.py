"""Nested, thread/process-aware tracing spans.

A span measures one named region of code::

    with span("ml.train", fold=3):
        ...

On exit it records wall time (``perf_counter``), CPU time
(``process_time``) and the process's peak RSS so far, and appends one
JSON line to a per-process spool file ``spans-<pid>.jsonl``.  Nesting is
tracked per thread: every span knows its parent's id and depth, so an
exporter can rebuild the tree.

Process-awareness is the subtle part.  ``ProcessPoolExecutor`` workers
are *forked* on Linux, so they inherit the parent's tracer object —
including its open file handle and half-built span stack.  Every
operation therefore re-checks ``os.getpid()``: the first span taken in a
fresh process resets the stack, reopens the spool under the new pid and
restarts the span-id counter.  Spawned workers (no inherited state) find
the spool through :data:`PROFILE_DIR_ENV_VAR` instead.  Either way the
spool directory accumulates one append-only file per participating
process, merged later by :mod:`repro.obs.export`.

While profiling is disabled, :func:`span` returns a shared no-op context
manager — no allocation, no clock reads, no I/O.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from typing import IO, Optional

#: Environment variable carrying the spool directory into workers.
PROFILE_DIR_ENV_VAR = "BIGGERFISH_PROFILE_DIR"

try:
    import resource

    def peak_rss_kb() -> int:
        """This process's peak resident set size so far, in KiB.

        ``ru_maxrss`` is kilobytes on Linux and *bytes* on macOS.
        """
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if os.uname().sysname == "Darwin":
            peak //= 1024
        return int(peak)

except ImportError:  # non-POSIX: profile without memory numbers

    def peak_rss_kb() -> int:
        return 0


class _NullSpan:
    """Shared do-nothing span handed out while profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Span:
    """One live measurement region; created by :meth:`SpanTracer.span`."""

    __slots__ = (
        "tracer",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "depth",
        "_t_wall",
        "_t_perf",
        "_t_cpu",
    )

    def __init__(self, tracer: "SpanTracer", name: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> "Span":
        """Attach attributes mid-span (e.g. an outcome)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        parent = stack[-1] if stack else None
        self.span_id = self.tracer._next_id()
        self.parent_id = parent.span_id if parent is not None else None
        self.depth = parent.depth + 1 if parent is not None else 0
        stack.append(self)
        self._t_wall = time.time()
        self._t_perf = time.perf_counter()
        self._t_cpu = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall_s = time.perf_counter() - self._t_perf
        cpu_s = time.process_time() - self._t_cpu
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        event = {
            "type": "span",
            "name": self.name,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "t_start": round(self._t_wall, 6),
            "wall_s": round(wall_s, 6),
            "cpu_s": round(cpu_s, 6),
            "rss_peak_kb": peak_rss_kb(),
        }
        if exc_type is not None:
            event["error"] = exc_type.__name__
        if self.attrs:
            event["attrs"] = self.attrs
        self.tracer._emit(event)
        return False


class SpanTracer:
    """Per-run span recorder writing JSONL spools under one directory."""

    def __init__(self, spool_dir: os.PathLike):
        self.spool_dir = pathlib.Path(spool_dir)
        self._lock = threading.Lock()
        self._pid: Optional[int] = None
        self._handle: Optional[IO[str]] = None
        self._counter = 0
        self._local = threading.local()

    # -- process/thread bookkeeping ------------------------------------

    def _ensure_process(self) -> None:
        """Reset inherited state the first time a forked child records."""
        if self._pid != os.getpid():
            with self._lock:
                if self._pid != os.getpid():
                    if self._handle is not None:
                        try:
                            self._handle.close()
                        except OSError:
                            pass
                    self._pid = os.getpid()
                    self._handle = None
                    self._counter = 0
                    self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        with self._lock:
            self._counter += 1
            return self._counter

    # -- recording ------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        self._ensure_process()
        return Span(self, name, attrs)

    def _emit(self, event: dict) -> None:
        line = json.dumps(event, sort_keys=False)
        with self._lock:
            if self._handle is None:
                self.spool_dir.mkdir(parents=True, exist_ok=True)
                path = self.spool_dir / f"spans-{os.getpid()}.jsonl"
                # Opening the spool under the lock is deliberate: emits
                # must serialize against lazy-open anyway, the open is
                # once per process, and span lines must never interleave.
                self._handle = open(path, "a")  # lint: disable=blocking-call-under-lock
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None


# ----------------------------------------------------------------------
# module-level state — one tracer per process, env-inheritable

_TRACER: Optional[SpanTracer] = None
_ENV_CHECKED = False


def activate(spool_dir: os.PathLike) -> SpanTracer:
    """Install a tracer spooling into ``spool_dir`` (idempotent)."""
    global _TRACER, _ENV_CHECKED
    _TRACER = SpanTracer(spool_dir)
    _ENV_CHECKED = True
    return _TRACER


def deactivate() -> None:
    global _TRACER, _ENV_CHECKED
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = None
    _ENV_CHECKED = False


def active_tracer() -> Optional[SpanTracer]:
    """The live tracer, auto-activating from the environment once.

    The env check runs at most once per process while disabled, so the
    steady-state disabled cost of :func:`span` is one None comparison.
    """
    global _TRACER, _ENV_CHECKED
    if _TRACER is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        spool = os.environ.get(PROFILE_DIR_ENV_VAR, "").strip()
        if spool:
            _TRACER = SpanTracer(pathlib.Path(spool))
    return _TRACER


def span(name: str, **attrs):
    """A measurement region, or the shared no-op while disabled."""
    tracer = active_tracer()
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)
