"""Profile exporters: spool merging, JSONL log, SVG timeline, summary.

A profiled run leaves a spool directory of per-process files —
``spans-<pid>.jsonl`` (one event per completed span) and
``metrics-<pid>.jsonl`` (delta flushes).  This module merges them into a
:class:`Profile`, which then renders three ways:

* ``profile.jsonl`` — the merged event log (spans in start order, one
  trailing aggregated-metrics line), the durable artifact next to
  ``run_manifest.json``;
* an SVG timeline — one lane block per process, spans drawn as
  depth-stacked rectangles via the existing :mod:`repro.viz.svg`
  primitives (a flame view of where the run's wall clock went);
* a summary dict — per-span-name and per-stage totals, peak RSS and the
  merged metrics — folded into the run manifest under ``"profile"``.

Everything here is timestamp-deterministic: the same run produces the
same events modulo clock readings, and merging sorts on recorded fields
only.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import merge_deltas

#: Merged event-log file name written inside ``--save-dir``.
PROFILE_FILENAME = "profile.jsonl"
#: SVG timeline file name written inside ``--save-dir``.
TIMELINE_FILENAME = "profile_timeline.svg"


@dataclass
class Profile:
    """Merged view of one run's spans and metrics."""

    spans: List[dict] = field(default_factory=list)
    metrics: Dict[str, dict] = field(default_factory=dict)

    @property
    def pids(self) -> List[int]:
        """Participating process ids, parent first (earliest span wins)."""
        seen: Dict[int, float] = {}
        for event in self.spans:
            pid = event["pid"]
            if pid not in seen or event["t_start"] < seen[pid]:
                seen[pid] = event["t_start"]
        return [pid for pid, _ in sorted(seen.items(), key=lambda kv: kv[1])]

    def t_origin(self) -> float:
        """Wall-clock origin: the earliest span start."""
        return min((e["t_start"] for e in self.spans), default=0.0)


def merge_spool(spool_dir: os.PathLike) -> Profile:
    """Merge every per-process spool file into one :class:`Profile`."""
    spool = pathlib.Path(spool_dir)
    spans: List[dict] = []
    metric_events: List[dict] = []
    for path in sorted(spool.glob("spans-*.jsonl")):
        spans.extend(_read_jsonl(path))
    for path in sorted(spool.glob("metrics-*.jsonl")):
        metric_events.extend(_read_jsonl(path))
    spans.sort(key=lambda e: (e["t_start"], e["pid"], e["span_id"]))
    return Profile(spans=spans, metrics=merge_deltas(metric_events))


def _read_jsonl(path: pathlib.Path) -> List[dict]:
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


# ----------------------------------------------------------------------
# profile.jsonl


def write_profile(profile: Profile, path: os.PathLike) -> pathlib.Path:
    """Write the merged event log: spans, then one metrics line."""
    path = pathlib.Path(path)
    with open(path, "w") as handle:
        for event in profile.spans:
            handle.write(json.dumps(event) + "\n")
        handle.write(
            json.dumps({"type": "metrics", "merged": True, **profile.metrics}) + "\n"
        )
    return path


def read_profile(path: os.PathLike) -> Profile:
    """Load a ``profile.jsonl`` written by :func:`write_profile`."""
    spans: List[dict] = []
    metrics: Dict[str, dict] = {}
    for event in _read_jsonl(pathlib.Path(path)):
        if event.get("type") == "span":
            spans.append(event)
        elif event.get("type") == "metrics":
            for key in ("counters", "gauges", "histograms"):
                if key in event:
                    metrics.setdefault(key, {}).update(event[key])
    return Profile(spans=spans, metrics=metrics)


# ----------------------------------------------------------------------
# summary (run_manifest.json's "profile" block)


def summarize(profile: Profile, top_n: int = 5) -> dict:
    """Condense a profile into the manifest's ``"profile"`` block.

    ``spans`` aggregates by span name (count / wall / CPU / max peak
    RSS); ``stages`` aggregates ``engine.map`` spans by their stage
    attribute; ``top_spans`` lists the slowest individual spans.
    """
    by_name: Dict[str, dict] = {}
    stages: Dict[str, dict] = {}
    peak_rss = 0
    for event in profile.spans:
        entry = by_name.setdefault(
            event["name"],
            {"count": 0, "wall_s": 0.0, "cpu_s": 0.0, "max_rss_kb": 0},
        )
        entry["count"] += 1
        entry["wall_s"] = round(entry["wall_s"] + event["wall_s"], 6)
        entry["cpu_s"] = round(entry["cpu_s"] + event["cpu_s"], 6)
        entry["max_rss_kb"] = max(entry["max_rss_kb"], event["rss_peak_kb"])
        peak_rss = max(peak_rss, event["rss_peak_kb"])
        if event["name"] == "engine.map":
            stage = (event.get("attrs") or {}).get("stage") or "unstaged"
            st = stages.setdefault(stage, {"wall_s": 0.0, "maps": 0, "tasks": 0})
            st["wall_s"] = round(st["wall_s"] + event["wall_s"], 6)
            st["maps"] += 1
            st["tasks"] += (event.get("attrs") or {}).get("tasks", 0)
    slowest = sorted(profile.spans, key=lambda e: -e["wall_s"])[:top_n]
    return {
        "processes": len(profile.pids),
        "events": len(profile.spans),
        "peak_rss_kb": peak_rss,
        "spans": dict(sorted(by_name.items())),
        "stages": dict(sorted(stages.items())),
        "top_spans": [
            {
                "name": e["name"],
                "wall_s": e["wall_s"],
                "pid": e["pid"],
                "attrs": e.get("attrs", {}),
            }
            for e in slowest
        ],
        "metrics": profile.metrics,
    }


# ----------------------------------------------------------------------
# SVG timeline


def render_timeline(profile: Profile, title: str = "run timeline") -> Optional[str]:
    """Flame-style timeline SVG, one lane block per process.

    Spans become rectangles — x spans the wall-clock interval, y encodes
    (process, nesting depth) — drawn with the same
    :class:`repro.viz.svg.Plot` primitives the paper figures use.
    Returns None for an empty profile.
    """
    from repro.viz.svg import Axis, Plot

    if not profile.spans:
        return None
    origin = profile.t_origin()
    duration = max(
        (e["t_start"] - origin + e["wall_s"] for e in profile.spans), default=1.0
    )
    duration = max(duration, 1e-6)
    pids = profile.pids
    depth_of = {
        pid: max(e["depth"] for e in profile.spans if e["pid"] == pid) for pid in pids
    }
    # Lane layout: each process gets (max depth + 1) rows plus a divider.
    base: Dict[int, int] = {}
    rows = 0
    for pid in pids:
        base[pid] = rows
        rows += depth_of[pid] + 2
    rows = max(rows - 1, 1)
    height = max(140, 40 + 16 * rows)
    plot = Plot(
        x=Axis(0.0, duration, "seconds since run start"),
        y=Axis(0.0, float(rows)),
        width=900,
        height=height,
        title=title,
    )
    colors = _color_legend(profile)
    for event in profile.spans:
        x0 = event["t_start"] - origin
        x1 = x0 + max(event["wall_s"], duration / 2000.0)  # keep slivers visible
        row = base[event["pid"]] + event["depth"]
        y0 = rows - row - 0.9
        plot.area(
            [x0, x1],
            [y0, y0],
            [y0 + 0.8, y0 + 0.8],
            color=colors[event["name"]],
            opacity=0.85,
        )
    for name, color in sorted(colors.items()):
        plot.line([0.0, 1e-9 * duration], [0.0, 0.0], color=color, label=name)
    for pid in pids:
        row = base[pid]
        plot.text(duration * 0.002, rows - row - 0.05, f"pid {pid}", size=9)
    return plot.render()


def _color_legend(profile: Profile) -> Dict[str, str]:
    """Stable span-name -> palette color assignment (order of first use)."""
    from repro.viz.svg import PALETTE

    colors: Dict[str, str] = {}
    for event in profile.spans:
        name = event["name"]
        if name not in colors:
            colors[name] = PALETTE[len(colors) % len(PALETTE)]
    return colors


def export_run(
    spool_dir: os.PathLike, save_dir: Optional[os.PathLike], top_n: int = 5
) -> tuple[Profile, dict]:
    """Merge a spool and (optionally) write the run's profile artifacts.

    Returns ``(profile, summary)``; with a ``save_dir`` it also writes
    ``profile.jsonl`` and ``profile_timeline.svg`` there.
    """
    profile = merge_spool(spool_dir)
    summary = summarize(profile, top_n=top_n)
    if save_dir is not None:
        save_dir = pathlib.Path(save_dir)
        save_dir.mkdir(parents=True, exist_ok=True)
        write_profile(profile, save_dir / PROFILE_FILENAME)
        svg = render_timeline(profile)
        if svg is not None:
            (save_dir / TIMELINE_FILENAME).write_text(svg)
    return profile, summary
