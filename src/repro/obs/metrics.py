"""Counters, gauges and fixed-bucket histograms.

Instrumented code asks for instruments by dotted name::

    counter("engine.cache.hits").inc()
    gauge("engine.jobs").set(4)
    histogram("ml.epoch_seconds").observe(elapsed)

While profiling is disabled the accessors return shared no-op
instruments, so hot paths pay one None comparison and nothing else.
While enabled, a per-process :class:`MetricsRegistry` owns the
instruments and periodically *flushes deltas* — the change since the
previous flush — as JSON lines into ``metrics-<pid>.jsonl`` under the
spool directory.  Delta flushing is what makes cross-process merging
trivial and double-count-proof: the exporter simply sums every line,
regardless of which process (or forked copy) wrote it.

Fork-safety mirrors :mod:`repro.obs.spans`: a ``ProcessPoolExecutor``
worker inherits the parent registry, complete with counts the parent
already owns; the first instrument access under the new pid discards the
inherited registry for a zeroed one, so workers report only their own
work.  The engine flushes worker registries after every task (see
``repro.engine.engine._TimedTask``), which also covers pool teardown
paths where ``atexit`` never runs.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
from typing import Dict, Optional, Sequence, Union

#: Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    50.0,
    100.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with sum and count.

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        if list(buckets) != sorted(buckets) or len(buckets) == 0:
            raise ValueError(f"histogram buckets must be sorted and non-empty: {buckets}")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1


class _NullInstrument:
    """Shared sink for every instrument kind while profiling is off."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()

Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Per-process instrument store with delta flushing."""

    def __init__(self, spool_dir: Optional[os.PathLike] = None):
        self.spool_dir = pathlib.Path(spool_dir) if spool_dir is not None else None
        self.pid = os.getpid()
        self._lock = threading.Lock()
        self._instruments: Dict[str, Instrument] = {}
        #: Values as of the last flush, keyed like the snapshot.
        self._flushed: Dict[str, object] = {}

    # -- instrument accessors ------------------------------------------

    def _get(self, name: str, kind: type, *args) -> Instrument:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = kind(name, *args)
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, requested {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, buckets)

    # -- snapshots and flushing ----------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """Current absolute values of every instrument."""
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> Dict[str, dict]:
        out: Dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, inst in sorted(self._instruments.items()):
            if isinstance(inst, Counter):
                out["counters"][name] = inst.value
            elif isinstance(inst, Gauge):
                out["gauges"][name] = inst.value
            else:
                out["histograms"][name] = {
                    "buckets": list(inst.buckets),
                    "counts": list(inst.counts),
                    "sum": round(inst.sum, 9),
                    "count": inst.count,
                }
        return out

    def _delta(self) -> Optional[dict]:
        """Change since the previous flush, or None if nothing moved.

        Snapshotting, diffing against ``_flushed`` and updating
        ``_flushed`` happen under one lock acquisition: two concurrent
        flushers must never both read the same previous values, or the
        same delta would be spooled twice and the merged totals drift
        from the true snapshot.
        """
        with self._lock:
            return self._delta_locked()

    def _delta_locked(self) -> Optional[dict]:
        snap = self._snapshot_locked()
        delta: Dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        dirty = False
        for name, value in snap["counters"].items():
            previous = self._flushed.get(("c", name), 0)
            if value != previous:
                delta["counters"][name] = value - previous
                dirty = True
        for name, value in snap["gauges"].items():
            if value != self._flushed.get(("g", name)):
                delta["gauges"][name] = value
                dirty = True
        for name, hist in snap["histograms"].items():
            previous = self._flushed.get(("h", name))
            if previous is None:
                if hist["count"]:
                    delta["histograms"][name] = hist
                    dirty = True
            elif hist["count"] != previous["count"]:
                delta["histograms"][name] = {
                    "buckets": hist["buckets"],
                    "counts": [
                        a - b for a, b in zip(hist["counts"], previous["counts"])
                    ],
                    "sum": round(hist["sum"] - previous["sum"], 9),
                    "count": hist["count"] - previous["count"],
                }
                dirty = True
        if not dirty:
            return None
        for name, value in snap["counters"].items():
            self._flushed[("c", name)] = value
        for name, value in snap["gauges"].items():
            self._flushed[("g", name)] = value
        for name, hist in snap["histograms"].items():
            self._flushed[("h", name)] = hist
        return delta

    def flush(self) -> bool:
        """Append un-flushed deltas to this process's spool file.

        Returns True when a line was written.  No-op without a spool.
        """
        if self.spool_dir is None:
            return False
        delta = self._delta()
        if delta is None:
            return False
        delta = {k: v for k, v in delta.items() if v}
        event = {"type": "metrics", "pid": self.pid, **delta}
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        path = self.spool_dir / f"metrics-{self.pid}.jsonl"
        with open(path, "a") as handle:
            handle.write(json.dumps(event) + "\n")
        return True


def merge_deltas(events: Sequence[dict]) -> Dict[str, dict]:
    """Aggregate flushed delta events from any number of processes.

    Counters and histogram cells sum; gauges keep the last value seen
    (events are expected in spool order, which is per-process
    chronological).
    """
    merged: Dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
    for event in events:
        for name, value in event.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in event.get("gauges", {}).items():
            merged["gauges"][name] = value
        for name, hist in event.get("histograms", {}).items():
            into = merged["histograms"].get(name)
            if into is None or into["buckets"] != hist["buckets"]:
                merged["histograms"][name] = {
                    "buckets": list(hist["buckets"]),
                    "counts": list(hist["counts"]),
                    "sum": hist["sum"],
                    "count": hist["count"],
                }
            else:
                into["counts"] = [
                    a + b for a, b in zip(into["counts"], hist["counts"])
                ]
                into["sum"] = round(into["sum"] + hist["sum"], 9)
                into["count"] += hist["count"]
    for name in list(merged["counters"]):
        merged["counters"][name] = int(merged["counters"][name])
    return {k: dict(sorted(v.items())) for k, v in merged.items()}


# ----------------------------------------------------------------------
# module-level state — mirrors repro.obs.spans

_REGISTRY: Optional[MetricsRegistry] = None
_ENV_CHECKED = False


def activate(spool_dir: os.PathLike) -> MetricsRegistry:
    global _REGISTRY, _ENV_CHECKED
    _REGISTRY = MetricsRegistry(spool_dir)
    _ENV_CHECKED = True
    return _REGISTRY


def deactivate() -> None:
    global _REGISTRY, _ENV_CHECKED
    if _REGISTRY is not None:
        _REGISTRY.flush()
    _REGISTRY = None
    _ENV_CHECKED = False


def active_registry() -> Optional[MetricsRegistry]:
    """The live registry, fork-aware and env-auto-activating.

    A registry inherited across ``fork`` carries the parent's counts;
    the first access in the child replaces it with a zeroed registry so
    every process reports only its own work.
    """
    global _REGISTRY, _ENV_CHECKED
    if _REGISTRY is None:
        if not _ENV_CHECKED:
            _ENV_CHECKED = True
            from repro.obs.spans import PROFILE_DIR_ENV_VAR

            spool = os.environ.get(PROFILE_DIR_ENV_VAR, "").strip()
            if spool:
                _REGISTRY = MetricsRegistry(pathlib.Path(spool))
        return _REGISTRY
    if _REGISTRY.pid != os.getpid():
        _REGISTRY = MetricsRegistry(_REGISTRY.spool_dir)
    return _REGISTRY


def counter(name: str):
    registry = active_registry()
    return NULL_INSTRUMENT if registry is None else registry.counter(name)


def gauge(name: str):
    registry = active_registry()
    return NULL_INSTRUMENT if registry is None else registry.gauge(name)


def histogram(name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
    registry = active_registry()
    return NULL_INSTRUMENT if registry is None else registry.histogram(name, buckets)


def flush_metrics() -> bool:
    """Flush this process's pending metric deltas (no-op while off)."""
    registry = active_registry()
    return registry.flush() if registry is not None else False
