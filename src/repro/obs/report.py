"""The ``biggerfish report <run-dir>`` breakdown renderer.

Reads the profile artifacts a ``--profile`` run leaves in its save
directory — ``profile.jsonl`` and ``run_manifest.json`` — and renders a
terminal breakdown: per-stage wall clock and task spread, per-span-name
totals (wall / CPU / calls / peak RSS), the top-N slowest individual
spans, and cache hit statistics.  Works from either artifact alone:
without a manifest the stage table comes from the spans; without spans
it falls back to the manifest's recorded stage timings.
"""

from __future__ import annotations

import json
import pathlib
from typing import List, Optional, Sequence

from repro.obs.export import PROFILE_FILENAME, Profile, read_profile, summarize

#: Slowest-span rows printed by default.
DEFAULT_TOP_N = 10


def _format_rows(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width text table (kept local so obs stays dependency-light)."""
    columns = [list(col) for col in zip(header, *rows)]
    widths = [max(len(cell) for cell in col) for col in columns]

    def render(cells):
        return "  ".join(cell.ljust(w) for cell, w in zip(cells, widths)).rstrip()

    lines = [render(header), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


def _fmt_seconds(seconds: float) -> str:
    return f"{seconds:.3f}s"


def _fmt_rss(kb: int) -> str:
    return f"{kb / 1024:.1f}MB" if kb else "-"


def load_run(run_dir: pathlib.Path) -> tuple[Optional[Profile], Optional[dict]]:
    """Best-effort load of ``(profile, manifest)`` from a run directory."""
    profile = None
    manifest = None
    profile_path = run_dir / PROFILE_FILENAME
    manifest_path = run_dir / "run_manifest.json"
    if profile_path.exists():
        profile = read_profile(profile_path)
    if manifest_path.exists():
        manifest = json.loads(manifest_path.read_text())
    return profile, manifest


def format_report(
    run_dir: pathlib.Path,
    profile: Optional[Profile],
    manifest: Optional[dict],
    top_n: int = DEFAULT_TOP_N,
) -> str:
    """Render the full breakdown for one run directory."""
    lines: List[str] = [f"run: {run_dir}"]
    if manifest is not None:
        status = manifest.get("status", "ok")
        lines.append(
            f"scale={manifest.get('scale')} seed={manifest.get('seed')} "
            f"jobs={manifest.get('jobs')} status={status}"
        )
        if manifest.get("error"):
            error = manifest["error"]
            lines.append(
                f"failed in {error.get('experiment', '?')}: "
                f"{error.get('type', '?')}: {error.get('message', '')}"
            )
    summary = summarize(profile, top_n=top_n) if profile is not None else None

    lines.append("")
    lines.extend(_stage_section(summary, manifest))
    faults_lines = _faults_section(manifest)
    if faults_lines:
        lines.append("")
        lines.extend(faults_lines)
    if summary is not None:
        lines.append("")
        lines.extend(_span_section(summary))
        lines.append("")
        lines.extend(_top_spans_section(summary, top_n))
        metrics_lines = _metrics_section(summary)
        if metrics_lines:
            lines.append("")
            lines.extend(metrics_lines)
    elif manifest is None:
        lines.append("no profile.jsonl or run_manifest.json found")
    lines.extend(_cache_section(summary, manifest))
    return "\n".join(lines)


def _stage_section(summary: Optional[dict], manifest: Optional[dict]) -> List[str]:
    """Per-stage wall clock: prefer the manifest's task-level spread."""
    rows: List[List[str]] = []
    if manifest is not None:
        for experiment_id, record in manifest.get("experiments", {}).items():
            for stage, timing in record.get("stages", {}).items():
                spread = timing.get("task_seconds")
                rows.append(
                    [
                        experiment_id,
                        stage,
                        _fmt_seconds(timing.get("seconds", 0.0)),
                        str(timing.get("tasks", 0)),
                        _fmt_seconds(spread["min"]) if spread else "-",
                        _fmt_seconds(spread["mean"]) if spread else "-",
                        _fmt_seconds(spread["max"]) if spread else "-",
                    ]
                )
    if not rows and summary is not None:
        for stage, record in summary.get("stages", {}).items():
            rows.append(
                [
                    "-",
                    stage,
                    _fmt_seconds(record["wall_s"]),
                    str(record["tasks"]),
                    "-",
                    "-",
                    "-",
                ]
            )
    if not rows:
        return ["(no stage timings recorded)"]
    header = ["experiment", "stage", "wall", "tasks", "task min", "mean", "max"]
    return ["per-stage breakdown:", _format_rows(header, rows)]


def _faults_section(manifest: Optional[dict]) -> List[str]:
    """Retry/timeout totals and per-task error records, when any."""
    if manifest is None:
        return []
    faults = manifest.get("faults")
    lines: List[str] = []
    if faults:
        lines.append(
            "fault tolerance: "
            f"{faults.get('retries', 0)} retried attempt(s), "
            f"{faults.get('timeouts', 0)} timeout(s), "
            f"{faults.get('tasks_lost', 0)} task(s) lost to dead workers, "
            f"{faults.get('pool_respawns', 0)} pool respawn(s)"
        )
    rows: List[List[str]] = []
    for experiment_id, record in manifest.get("experiments", {}).items():
        for stage, timing in record.get("stages", {}).items():
            for error in timing.get("task_errors", []):
                rows.append(
                    [
                        experiment_id,
                        stage,
                        str(error.get("index", "?")),
                        str(error.get("attempt", "?")),
                        error.get("kind", "?"),
                        f"{error.get('error_type', '?')}: {error.get('message', '')}"[:80],
                    ]
                )
    if rows:
        header = ["experiment", "stage", "task", "attempt", "kind", "error"]
        lines.extend(["task errors:", _format_rows(header, rows)])
    return lines


def _span_section(summary: dict) -> List[str]:
    rows = [
        [
            name,
            str(record["count"]),
            _fmt_seconds(record["wall_s"]),
            _fmt_seconds(record["cpu_s"]),
            _fmt_rss(record["max_rss_kb"]),
        ]
        for name, record in sorted(
            summary["spans"].items(), key=lambda kv: -kv[1]["wall_s"]
        )
    ]
    header = ["span", "count", "wall", "cpu", "peak rss"]
    return [
        f"spans ({summary['events']} events from {summary['processes']} "
        f"process(es), peak rss {_fmt_rss(summary['peak_rss_kb'])}):",
        _format_rows(header, rows),
    ]


def _top_spans_section(summary: dict, top_n: int) -> List[str]:
    rows = []
    for record in summary["top_spans"][:top_n]:
        attrs = ", ".join(f"{k}={v}" for k, v in record["attrs"].items())
        rows.append(
            [record["name"], _fmt_seconds(record["wall_s"]), str(record["pid"]), attrs]
        )
    if not rows:
        return ["(no spans recorded)"]
    header = ["slowest spans", "wall", "pid", "attrs"]
    return [_format_rows(header, rows)]


def _metrics_section(summary: dict) -> List[str]:
    metrics = summary.get("metrics") or {}
    rows: List[List[str]] = []
    for name, value in metrics.get("counters", {}).items():
        rows.append([name, "counter", str(value)])
    for name, value in metrics.get("gauges", {}).items():
        rows.append([name, "gauge", f"{value:g}"])
    for name, hist in metrics.get("histograms", {}).items():
        mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
        rows.append([name, "histogram", f"n={hist['count']} mean={mean:.4g}"])
    if not rows:
        return []
    return ["metrics:", _format_rows(["metric", "kind", "value"], rows)]


def _cache_section(summary: Optional[dict], manifest: Optional[dict]) -> List[str]:
    cache = (manifest or {}).get("cache")
    if cache is None and summary is not None:
        counters = (summary.get("metrics") or {}).get("counters", {})
        hits = counters.get("engine.cache.hits")
        if hits is None:
            return []
        cache = {
            "hits": hits,
            "misses": counters.get("engine.cache.misses", 0),
            "puts": counters.get("engine.cache.puts", 0),
            "evictions": counters.get("engine.cache.evictions", 0),
        }
    if cache is None:
        return []
    total = cache.get("hits", 0) + cache.get("misses", 0)
    rate = f" ({cache['hits'] / total:.1%} hit rate)" if total else ""
    return [
        "",
        f"cache: {cache.get('hits', 0)} hit(s), {cache.get('misses', 0)} "
        f"miss(es), {cache.get('puts', 0)} put(s), "
        f"{cache.get('evictions', 0)} eviction(s){rate}",
    ]


def report_command(run_dir: str, top_n: int = DEFAULT_TOP_N) -> tuple[int, str]:
    """Entry point for the CLI: returns ``(exit_code, rendered_text)``."""
    path = pathlib.Path(run_dir)
    if not path.is_dir():
        return 2, f"biggerfish report: not a directory: {run_dir}"
    profile, manifest = load_run(path)
    if profile is None and manifest is None:
        return (
            2,
            f"biggerfish report: no {PROFILE_FILENAME} or run_manifest.json "
            f"in {run_dir} (did you run with --profile --save-dir?)",
        )
    return 0, format_report(path, profile, manifest, top_n=top_n)
