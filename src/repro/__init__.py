"""biggerfish: a full reproduction of "There's Always a Bigger Fish: A
Clarifying Analysis of a Machine-Learning-Assisted Side-Channel Attack"
(Cook, Drean, Behrens, Yan — ISCA 2022).

The package simulates the complete experimental stack of the paper — a
multi-core machine with a faithful interrupt system, website workloads,
browser timers, the loop-counting and sweep-counting attackers, an
eBPF-style kernel tracer, a numpy CNN+LSTM classifier — and regenerates
every table and figure of the evaluation.

Quick start::

    from repro import FingerprintingPipeline, MachineConfig, CHROME, SMOKE

    pipeline = FingerprintingPipeline(MachineConfig(), CHROME, scale=SMOKE)
    result = pipeline.run_closed_world()
    print(result.top1.as_percent())
"""

from repro.config import DEFAULT, PAPER, SCALES, SMOKE, Scale
from repro.engine import (
    CacheStats,
    ExecutionEngine,
    RunContext,
    RunManifest,
    TraceCache,
)
from repro.core import (
    FingerprintingPipeline,
    LoopCountingAttacker,
    NoiseHooks,
    SweepCountingAttacker,
    Trace,
    TraceBatch,
    TraceCollector,
    TraceSpec,
    analyze_run,
)
from repro.sim import InterruptSynthesizer, InterruptType, MachineConfig, MachineRun
from repro.workload import (
    CHROME,
    FIREFOX,
    LINUX,
    MACOS,
    SAFARI,
    TOR_BROWSER,
    WINDOWS,
    WebsiteProfile,
    closed_world,
    profile_for,
)

# 1.1.0: batched (vectorized) interrupt synthesis changed the RNG draw
# order, so traces differ from 1.0.x; the version participates in trace
# cache keys, which invalidates stale cached traces automatically.
# 1.2.0: the repro.verify differential-oracle harness now certifies the
# 1.1.0 draw order against a retained scalar reference; traces are
# unchanged, the bump marks the certified surface.
# 1.3.0: the repro.data sharded dataset store lands; traces are
# unchanged, but the version is recorded in every store manifest as
# build provenance, so the bump marks the new on-disk surface.
__version__ = "1.3.0"

__all__ = [
    "CacheStats", "ExecutionEngine", "RunContext", "RunManifest", "TraceCache",
    "DEFAULT", "PAPER", "SCALES", "SMOKE", "Scale", "FingerprintingPipeline",
    "LoopCountingAttacker", "NoiseHooks", "SweepCountingAttacker", "Trace",
    "TraceBatch", "TraceCollector", "TraceSpec", "analyze_run",
    "InterruptSynthesizer",
    "InterruptType", "MachineConfig", "MachineRun", "CHROME", "FIREFOX",
    "LINUX", "MACOS", "SAFARI", "TOR_BROWSER", "WINDOWS", "WebsiteProfile",
    "closed_world", "profile_for", "__version__",
]
