"""Figure 4: loop- vs sweep-counting traces are strongly correlated.

The paper averages 100 normalized runs of each attacker per website and
reports Pearson correlations of r = 0.87 (nytimes.com), 0.79
(amazon.com) and 0.94 (weather.com): the two attackers' traces are
shaped by the same system events, even though one of them never touches
memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attacker import LoopCountingAttacker, SweepCountingAttacker
from repro.core.collector import TraceCollector
from repro.core.trace import average_traces
from repro.experiments.base import ExperimentResult, format_rows, register
from repro.sim.events import MS
from repro.sim.machine import MachineConfig
from repro.stats.summary import pearson_r
from repro.workload.browser import CHROME, LINUX
from repro.workload.catalog import marquee_sites


@dataclass
class Fig4Row:
    site: str
    correlation: float


@dataclass
class Fig4Result(ExperimentResult):
    rows: list[Fig4Row]
    n_runs: int

    def format_table(self) -> str:
        table = format_rows(
            ["website", "r(loop, sweep)"],
            [[row.site, f"{row.correlation:.2f}"] for row in self.rows],
        )
        return (
            f"Figure 4: attacker-trace correlation over {self.n_runs} runs\n" + table
        )


@register(
    "fig4",
    paper_ref="Figure 4",
    description="loop- vs sweep-counting averaged-trace correlation",
)
def run(ctx) -> Fig4Result:
    """Average n runs per attacker per site and correlate them."""
    n_runs = max(10, ctx.scale.traces_per_site)
    machine = MachineConfig(os=LINUX)
    collectors = {
        "loop": TraceCollector(
            machine, CHROME, attacker=LoopCountingAttacker(),
            period_ns=int(ctx.scale.period_ms * MS), seed=ctx.seed,
            engine=ctx.engine,
        ),
        "sweep": TraceCollector(
            machine, CHROME, attacker=SweepCountingAttacker(),
            period_ns=int(ctx.scale.period_ms * MS), seed=ctx.seed,
            engine=ctx.engine,
        ),
    }
    rows = []
    for site in marquee_sites():
        averages = {}
        for name, collector in collectors.items():
            traces = collector.collect(site, n_runs)
            averages[name] = average_traces(list(traces))
        rows.append(
            Fig4Row(site=site.name, correlation=pearson_r(averages["loop"], averages["sweep"]))
        )
    return Fig4Result(rows=rows, n_runs=n_runs)
