"""Command-line experiment runner.

Usage::

    biggerfish --list
    biggerfish fig3 table2 --scale smoke --seed 1
    biggerfish table1 --scale smoke --jobs 4 --save-dir out/
    biggerfish table1 --scale smoke --profile --save-dir out/
    biggerfish all --scale default
    biggerfish cache info
    biggerfish cache clear
    biggerfish report out/
    biggerfish lint src/ tests/ --format json
    biggerfish bench --compare benchmarks/results/bench_main.json
    biggerfish verify --seeds 25 --shrink
    biggerfish train --out model/ --scale smoke
    biggerfish serve --artifact model/ < requests.jsonl
    biggerfish predict --artifact model/ --scale smoke --check-direct
    biggerfish data build store/ --sites 20 --traces 30 --jobs 4

Each experiment prints the paper table/figure it regenerates.  The CLI
caches collected traces on disk by default (``--no-cache`` disables,
``--cache-dir`` / ``BIGGERFISH_CACHE_DIR`` relocate) and can fan work
out over worker processes (``--jobs`` / ``BIGGERFISH_JOBS``); parallel
runs produce bit-identical results to serial ones.  Parallel runs are
fault-tolerant: failed tasks retry deterministically (``--retries`` /
``BIGGERFISH_RETRIES``), hung tasks are abandoned past ``--task-timeout``
(``BIGGERFISH_TASK_TIMEOUT``) and re-executed, and dead worker pools are
respawned.  With ``--save-dir`` a ``run_manifest.json`` records
per-stage timings, cache statistics and fault counters (retries,
timeouts, lost tasks, per-task error records) next to the rendered
tables.

``--profile`` (or ``BIGGERFISH_PROFILE=1``) turns on the
:mod:`repro.obs` observability subsystem: spans and metrics from every
process are merged into ``profile.jsonl``, rendered as an SVG timeline,
and summarized into the manifest; ``biggerfish report <run-dir>`` prints
the per-stage time/memory/cache breakdown afterwards.  Profiling never
changes results — a profiled run's tables are bit-identical.

``biggerfish lint`` runs the :mod:`repro.lint` determinism linter
(seeded-RNG plumbing, simulated-time-only simulation code, order-stable
iteration); ``biggerfish bench`` runs the :mod:`repro.bench`
perf-regression harness (seeded scenarios, ``bench_*.json`` results,
``--compare BASELINE`` exits nonzero on regression); ``biggerfish
verify`` runs the :mod:`repro.verify` differential-oracle harness
(every optimized path against its reference over seeded cases, with
counterexample shrinking — see ``docs/VERIFY.md``).  All three own
their argument grammar — see ``biggerfish lint --help`` / ``biggerfish
bench --help`` / ``biggerfish verify --help``.  The full flag and
environment-variable reference lives in ``docs/CLI.md``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import tempfile
import time

from repro import obs

# Importing the experiment modules populates the registry.
from repro.config import SCALES
from repro.engine import ExecutionEngine, RunContext, RunManifest, TraceCache
from repro.engine.cache import default_cache_dir
from repro.obs import export as obs_export
from repro.obs import report as obs_report
from repro.experiments import (  # noqa: F401  (registration side effects)
    ablation_timer,
    background_noise,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    table1,
    table2,
    table3,
    table4,
)
from repro.experiments.base import (
    get_experiment,
    list_experiments,
    suggest_experiment,
)
from repro.viz.figures import render

#: Environment variable equivalent of ``--profile``.
PROFILE_ENV_VAR = "BIGGERFISH_PROFILE"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="biggerfish",
        description=(
            "Regenerate the tables and figures of 'There's Always a Bigger "
            "Fish' (ISCA 2022) on the simulated substrate."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=(
            "experiment ids (e.g. table1 fig5), 'all', or a subcommand: "
            "'cache info' / 'cache clear' / 'report <run-dir>' / "
            "'lint [paths]' / 'bench [scenarios]' / 'verify' / 'data ...'"
        ),
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="default")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: BIGGERFISH_JOBS or 1 = serial)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        help="re-execution attempts per failed task "
        "(default: BIGGERFISH_RETRIES or 2; retries are bit-identical)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="abandon and retry a parallel task running longer than this "
        "(default: BIGGERFISH_TASK_TIMEOUT or no timeout)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="trace cache location (default: BIGGERFISH_CACHE_DIR or "
        "~/.cache/biggerfish/traces)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk trace cache for this run",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--save-dir",
        default=None,
        help="write rendered tables (.txt), figures (.svg) and a "
        "run_manifest.json here",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="record tracing spans and metrics (or BIGGERFISH_PROFILE=1); "
        "writes profile.jsonl and an SVG timeline into --save-dir",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=obs_report.DEFAULT_TOP_N,
        help="slowest spans to show in 'report' output and the manifest",
    )
    return parser


def _cache_command(args: argparse.Namespace) -> int:
    """Handle ``biggerfish cache info|clear``."""
    verbs = args.experiments[1:]
    verb = verbs[0] if verbs else "info"
    if len(verbs) > 1 or verb not in ("info", "clear"):
        print(
            "usage: biggerfish cache [info|clear]", file=sys.stderr
        )
        return 2
    cache = TraceCache(args.cache_dir or default_cache_dir())
    info = cache.info()
    if verb == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached trace(s) from {info['path']}")
        return 0
    print(f"cache dir:   {info['path']}")
    print(f"entries:     {info['entries']}")
    print(f"total bytes: {info['size_bytes']}")
    print(f"size cap:    {info['max_bytes']}")
    return 0


def _report_command(args: argparse.Namespace) -> int:
    """Handle ``biggerfish report <run-dir>``."""
    targets = args.experiments[1:]
    if len(targets) != 1:
        print("usage: biggerfish report <run-dir> [--top N]", file=sys.stderr)
        return 2
    code, text = obs_report.report_command(targets[0], top_n=args.top)
    print(text, file=sys.stderr if code else sys.stdout)
    return code


def _profile_requested(args: argparse.Namespace) -> bool:
    env = os.environ.get(PROFILE_ENV_VAR, "").strip().lower()
    return args.profile or env in ("1", "true", "yes", "on")


def _resolve_ids(requested: list[str]) -> list[str] | None:
    """Validate experiment ids; print did-you-mean and return None on error."""
    if requested == ["all"]:
        return list_experiments()
    known = set(list_experiments())
    unknown = [e for e in requested if e not in known]
    if unknown:
        for experiment_id in unknown:
            hints = suggest_experiment(experiment_id)
            suggestion = f" (did you mean: {', '.join(hints)}?)" if hints else ""
            print(
                f"biggerfish: unknown experiment {experiment_id!r}{suggestion}",
                file=sys.stderr,
            )
        print(
            "biggerfish: available: " + ", ".join(list_experiments()),
            file=sys.stderr,
        )
        return None
    return requested


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "lint":
        # The linter owns its argument grammar (--select, --baseline,
        # ...), so dispatch before this module's parser sees the args.
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "bench":
        # Same deal for the perf-regression harness (--repeat, --compare).
        from repro.bench.cli import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "verify":
        # And the differential-oracle harness (--seeds, --shrink).
        from repro.verify.cli import main as verify_main

        return verify_main(argv[1:])
    if argv and argv[0] in ("train", "serve", "predict"):
        # And the model-serving CLI (artifacts, batched inference).
        from repro.serve.cli import main as serve_main

        return serve_main(argv)
    if argv and argv[0] == "data":
        # And the sharded dataset store (build/ls/verify/merge).
        from repro.data.cli import main as data_main

        return data_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiments and args.experiments[0] == "cache":
        return _cache_command(args)
    if args.experiments and args.experiments[0] == "report":
        return _report_command(args)
    if args.list or not args.experiments:
        print("available experiments:", ", ".join(list_experiments()))
        return 0
    wanted = _resolve_ids(args.experiments)
    if wanted is None:
        return 2
    scale = SCALES[args.scale]
    cache = None
    if not args.no_cache:
        cache = TraceCache(args.cache_dir or default_cache_dir())
    try:
        engine = ExecutionEngine(
            jobs=args.jobs,
            cache=cache,
            retries=args.retries,
            task_timeout=args.task_timeout,
        )
    except ValueError as error:  # bad --jobs / --retries / --task-timeout
        print(f"biggerfish: {error}", file=sys.stderr)
        return 2
    ctx = RunContext(scale=scale, seed=args.seed, engine=engine)
    save_dir = pathlib.Path(args.save_dir) if args.save_dir else None
    if save_dir:
        save_dir.mkdir(parents=True, exist_ok=True)
    spool_dir = None
    if _profile_requested(args):
        spool_dir = (
            save_dir / ".obs-spool"
            if save_dir
            else pathlib.Path(tempfile.mkdtemp(prefix="biggerfish-obs-"))
        )
        obs.enable(spool_dir)
    manifest = RunManifest(
        scale=scale.name,
        seed=args.seed,
        jobs=engine.jobs,
        scale_params=scale.as_dict(),
    )
    exit_code = 0
    try:
        for experiment_id in wanted:
            run = get_experiment(experiment_id)
            engine.reset_timings()
            started = time.time()
            try:
                with obs.span("experiment." + experiment_id, scale=scale.name):
                    result = run(ctx)
            except Exception as error:
                # A crashed run still leaves a diagnosable partial
                # manifest (status="failed") and its profile artifacts.
                elapsed = time.time() - started
                manifest.add_experiment(
                    experiment_id, elapsed, engine.timings_snapshot()
                )
                manifest.mark_failed(experiment_id, error)
                print(
                    f"biggerfish: {experiment_id} failed after {elapsed:.1f}s: "
                    f"{type(error).__name__}: {error}",
                    file=sys.stderr,
                )
                exit_code = 1
                break
            elapsed = time.time() - started
            manifest.add_experiment(experiment_id, elapsed, engine.timings_snapshot())
            print(f"=== {experiment_id} (scale={scale.name}, {elapsed:.1f}s) ===")
            print(result.format_table())
            print()
            if save_dir:
                (save_dir / f"{experiment_id}.txt").write_text(
                    result.format_table() + "\n"
                )
                svg = render(experiment_id, result)
                if svg is not None:
                    (save_dir / f"{experiment_id}.svg").write_text(svg)
    finally:
        manifest.finalize(engine)
        if spool_dir is not None:
            obs.flush_metrics()
            profile, summary = obs_export.export_run(
                spool_dir, save_dir, top_n=args.top
            )
            manifest.profile = summary
            obs.disable()
            if save_dir is None:
                print(
                    obs_report.format_report(
                        pathlib.Path("."), profile, manifest.as_dict(), top_n=args.top
                    )
                )
        if cache is not None:
            stats = cache.stats
            print(
                f"[cache] {stats.hits} hit(s), {stats.misses} miss(es), "
                f"{stats.puts} put(s) in {cache.path}"
            )
        if save_dir:
            manifest.write(save_dir)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
