"""Command-line experiment runner.

Usage::

    biggerfish --list
    biggerfish fig3 table2 --scale smoke --seed 1
    biggerfish all --scale default

Each experiment prints the paper table/figure it regenerates.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

# Importing the experiment modules populates the registry.
from repro.config import SCALES
from repro.experiments import (  # noqa: F401  (registration side effects)
    ablation_timer,
    background_noise,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    table1,
    table2,
    table3,
    table4,
)
from repro.experiments.base import get_experiment, list_experiments
from repro.viz.figures import render


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="biggerfish",
        description=(
            "Regenerate the tables and figures of 'There's Always a Bigger "
            "Fish' (ISCA 2022) on the simulated substrate."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e.g. table1 fig5), or 'all'",
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="default")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--save-dir",
        default=None,
        help="write rendered tables (.txt) and figures (.svg) here",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list or not args.experiments:
        print("available experiments:", ", ".join(list_experiments()))
        return 0
    wanted = list_experiments() if args.experiments == ["all"] else args.experiments
    scale = SCALES[args.scale]
    save_dir = pathlib.Path(args.save_dir) if args.save_dir else None
    if save_dir:
        save_dir.mkdir(parents=True, exist_ok=True)
    for experiment_id in wanted:
        run = get_experiment(experiment_id)
        started = time.time()
        result = run(scale=scale, seed=args.seed)
        elapsed = time.time() - started
        print(f"=== {experiment_id} (scale={scale.name}, {elapsed:.1f}s) ===")
        print(result.format_table())
        print()
        if save_dir:
            (save_dir / f"{experiment_id}.txt").write_text(
                result.format_table() + "\n"
            )
            svg = render(experiment_id, result)
            if svg is not None:
                (save_dir / f"{experiment_id}.svg").write_text(svg)
    return 0


if __name__ == "__main__":
    sys.exit(main())
