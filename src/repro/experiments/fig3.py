"""Figure 3: example loop-counting traces for three websites.

The paper shows 15-second loop-counting traces (P = 5 ms) collected in
Chrome on Linux while nytimes.com, amazon.com and weather.com load.
Counter values span roughly 21 000–27 000; darker bands (smaller
counters) mark interrupt-heavy phases: nytimes is front-loaded in its
first ~4 s, amazon is busy for ~2 s with spikes near 5 s and 10 s.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.collector import TraceCollector
from repro.core.trace import Trace
from repro.experiments.base import ExperimentResult, format_rows, register, sparkline
from repro.sim.events import MS
from repro.sim.machine import MachineConfig
from repro.workload.browser import CHROME, LINUX
from repro.workload.catalog import marquee_sites


@dataclass
class Fig3Result(ExperimentResult):
    """One example trace per marquee site."""

    traces: list[Trace]
    period_ms: float

    def counter_range(self) -> tuple[float, float]:
        """Global (min, max) counter over all traces."""
        vectors = [t.to_vector() for t in self.traces]
        return (
            float(min(v.min() for v in vectors)),
            float(max(v.max() for v in vectors)),
        )

    def format_table(self) -> str:
        rows = []
        for trace in self.traces:
            vector = trace.to_vector()
            rows.append(
                [
                    trace.label,
                    f"{vector.min():.0f}",
                    f"{vector.max():.0f}",
                    sparkline(vector),
                ]
            )
        header = ["website", "min count", "max count", f"trace (P={self.period_ms:g}ms)"]
        return "Figure 3: example loop-counting traces\n" + format_rows(header, rows)


@register(
    "fig3",
    paper_ref="Figure 3",
    description="example loop-counting traces for three marquee websites",
)
def run(ctx) -> Fig3Result:
    """Collect one loop-counting trace per marquee site."""
    collector = TraceCollector(
        MachineConfig(os=LINUX),
        CHROME,
        period_ns=int(ctx.scale.period_ms * MS),
        seed=ctx.seed,
        engine=ctx.engine,
    )
    traces = list(collector.collect(marquee_sites()))
    return Fig3Result(traces=traces, period_ms=ctx.scale.period_ms)
