"""§4.2 "Robustness to Background Noise": Slack + Spotify vs the attack.

The paper runs Slack and Spotify (playing music) alongside the attacker
and observes only a small accuracy drop (96.6 % → 93.4 % in Chrome on
Linux), concluding that ordinary applications do not generate enough
interrupt noise to disturb the attack — unlike the purpose-built
spurious-interrupt countermeasure of §6.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attacker import LoopCountingAttacker
from repro.core.collector import NoiseHooks
from repro.core.pipeline import FingerprintingPipeline
from repro.experiments.base import ExperimentResult, format_rows, register
from repro.ml.crossval import CrossValResult
from repro.sim.machine import MachineConfig
from repro.workload.background import office_background
from repro.workload.browser import CHROME, LINUX


@dataclass
class BackgroundNoiseResult(ExperimentResult):
    quiet: CrossValResult
    noisy: CrossValResult

    @property
    def drop(self) -> float:
        return self.quiet.top1.mean - self.noisy.top1.mean

    def format_table(self) -> str:
        body = [
            ["no background noise", self.quiet.top1.as_percent()],
            ["Slack + Spotify running", self.noisy.top1.as_percent()],
        ]
        return (
            "§4.2 robustness to background noise (paper: 96.6 -> 93.4)\n"
            + format_rows(["condition", "top-1"], body)
            + f"\ndrop: {self.drop * 100:.1f} points"
        )


@register(
    "background-noise",
    paper_ref="§4.2",
    description="attack robustness to Slack + Spotify background noise",
)
def run(ctx) -> BackgroundNoiseResult:
    """Evaluate the attack with and without office background apps."""
    pipeline = FingerprintingPipeline.from_spec(
        MachineConfig(os=LINUX), CHROME,
        attacker=LoopCountingAttacker(), ctx=ctx,
    )
    quiet = pipeline.run_closed_world()
    background = office_background(pipeline.collector.spec.horizon_ns, seed=ctx.seed)
    noisy = pipeline.run_closed_world(noise=NoiseHooks(extra_timelines=background))
    return BackgroundNoiseResult(quiet=quiet, noisy=noisy)
