"""Experiment infrastructure: results, formatting, registry.

Every paper table and figure has a module in this package exposing
``run(scale, seed) -> Result``; results know how to print themselves as
the rows/series the paper reports.  The registry powers the
``biggerfish`` CLI and the benchmark harness.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, Sequence

from repro.config import DEFAULT, Scale


class ExperimentResult(abc.ABC):
    """Base class for experiment outputs."""

    @abc.abstractmethod
    def format_table(self) -> str:
        """Human-readable rendition of the paper's table/figure."""

    def __str__(self) -> str:
        return self.format_table()


def format_rows(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width text table."""
    columns = [list(col) for col in zip(header, *rows)]
    widths = [max(len(cell) for cell in col) for col in columns]
    def render(cells):
        return "  ".join(cell.ljust(w) for cell, w in zip(cells, widths)).rstrip()
    lines = [render(header), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


def sparkline(values, width: int = 60) -> str:
    """Compact ASCII rendition of a series (for trace figures)."""
    import numpy as np

    values = np.asarray(values, dtype=float)
    if len(values) == 0:
        return ""
    if len(values) > width:
        usable = (len(values) // width) * width
        values = values[:usable].reshape(width, -1).mean(axis=1)
    lo, hi = float(values.min()), float(values.max())
    glyphs = " .:-=+*#%@"
    if hi - lo < 1e-12:
        return glyphs[0] * len(values)
    scaled = ((values - lo) / (hi - lo) * (len(glyphs) - 1)).astype(int)
    return "".join(glyphs[i] for i in scaled)


#: Registered experiments: id -> run callable.
_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator adding an experiment ``run`` function to the registry."""

    def wrap(fn: Callable[..., ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = fn
        return fn

    return wrap


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up a registered experiment by id (e.g. ``"table1"``)."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def list_experiments() -> list[str]:
    """All registered experiment ids."""
    return sorted(_REGISTRY)
