"""Experiment infrastructure: results, formatting, registry.

Every paper table and figure has a module in this package implementing
the :class:`Experiment` protocol: an :class:`ExperimentSpec` (id, paper
reference, description) plus ``run(ctx: RunContext) -> ExperimentResult``,
where the context carries scale, seed, engine handle and trace cache.
Results know how to print themselves as the rows/series the paper
reports.  The registry powers the ``biggerfish`` CLI and the benchmark
harness.

Modules register a context-style run function with::

    @register("table1", paper_ref="Table 1", description="...")
    def run(ctx: RunContext, **extras) -> Table1Result: ...

The decorator wraps it in a :class:`FunctionExperiment` and binds the
module-level ``run`` name to an :class:`ExperimentHandle`.  Experiments
take exactly one :class:`~repro.engine.context.RunContext`; the
pre-engine ``run(scale=, seed=)`` convention was removed after its
one-release deprecation window (build a context with
``RunContext.default(scale=..., seed=...)`` instead).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, Sequence

from repro.engine.context import RunContext


class ExperimentResult(abc.ABC):
    """Base class for experiment outputs."""

    @abc.abstractmethod
    def format_table(self) -> str:
        """Human-readable rendition of the paper's table/figure."""

    def __str__(self) -> str:
        return self.format_table()


def format_rows(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width text table."""
    columns = [list(col) for col in zip(header, *rows)]
    widths = [max(len(cell) for cell in col) for col in columns]
    def render(cells):
        return "  ".join(cell.ljust(w) for cell, w in zip(cells, widths)).rstrip()
    lines = [render(header), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


def sparkline(values, width: int = 60) -> str:
    """Compact ASCII rendition of a series (for trace figures)."""
    import numpy as np

    values = np.asarray(values, dtype=float)
    if len(values) == 0:
        return ""
    if len(values) > width:
        usable = (len(values) // width) * width
        values = values[:usable].reshape(width, -1).mean(axis=1)
    lo, hi = float(values.min()), float(values.max())
    glyphs = " .:-=+*#%@"
    if hi - lo < 1e-12:
        return glyphs[0] * len(values)
    scaled = ((values - lo) / (hi - lo) * (len(glyphs) - 1)).astype(int)
    return "".join(glyphs[i] for i in scaled)


@dataclass(frozen=True)
class ExperimentSpec:
    """Identity of one experiment: id, paper reference, one-liner."""

    id: str
    paper_ref: str = ""
    description: str = ""


class Experiment(abc.ABC):
    """One paper table/figure: a spec plus a context-style run method."""

    spec: ExperimentSpec

    @abc.abstractmethod
    def run(self, ctx: RunContext, **extras) -> ExperimentResult:
        """Produce the experiment's result under the given context."""


class FunctionExperiment(Experiment):
    """Adapts a ``run(ctx, **extras)`` function to the protocol."""

    def __init__(self, spec: ExperimentSpec, fn: Callable[..., ExperimentResult]):
        self.spec = spec
        self._fn = fn

    def run(self, ctx: RunContext, **extras) -> ExperimentResult:
        return self._fn(ctx, **extras)

    def __repr__(self) -> str:
        return f"FunctionExperiment({self.spec.id!r})"


class ExperimentHandle:
    """Callable handle over an :class:`Experiment`.

    ``handle(ctx, **extras)`` / ``handle.run(ctx, **extras)`` — one
    :class:`RunContext` in, one :class:`ExperimentResult` out.  Passing
    a :class:`~repro.config.Scale` (or ``scale=`` / ``seed=`` keywords)
    raises ``TypeError``: the legacy convention was removed; build a
    context with ``RunContext.default(scale=..., seed=...)``.
    """

    def __init__(self, experiment: Experiment):
        self.experiment = experiment

    @property
    def spec(self) -> ExperimentSpec:
        return self.experiment.spec

    def run(self, ctx: RunContext, **extras) -> ExperimentResult:
        return self.experiment.run(ctx, **extras)

    def __call__(self, *args, **extras) -> ExperimentResult:
        ctx = extras.pop("ctx", None)
        if args:
            if ctx is not None:
                raise TypeError("pass the RunContext positionally or as ctx=, not both")
            ctx, args = args[0], args[1:]
        if args:
            raise TypeError(f"unexpected positional arguments: {args!r}")
        if not isinstance(ctx, RunContext):
            raise TypeError(
                f"{self.spec.id} takes a RunContext, got {type(ctx).__name__}; "
                "the legacy run(scale=, seed=) convention was removed — use "
                "RunContext.default(scale=..., seed=...)"
            )
        return self.experiment.run(ctx, **extras)

    def __repr__(self) -> str:
        return f"ExperimentHandle({self.spec.id!r})"


#: Registered experiments: id -> handle.
_REGISTRY: Dict[str, ExperimentHandle] = {}


def register(experiment_id: str, paper_ref: str = "", description: str = ""):
    """Decorator registering a ``run(ctx, **extras)`` experiment function.

    Returns an :class:`ExperimentHandle`, so the module-level ``run``
    name stays callable (``module.run(ctx, **extras)``).
    """

    def wrap(fn: Callable[..., ExperimentResult]) -> ExperimentHandle:
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        doc = (fn.__doc__ or "").strip()
        summary = description or (doc.splitlines()[0] if doc else "")
        spec = ExperimentSpec(
            id=experiment_id, paper_ref=paper_ref, description=summary
        )
        handle = ExperimentHandle(FunctionExperiment(spec, fn))
        _REGISTRY[experiment_id] = handle
        return handle

    return wrap


def get_experiment(experiment_id: str) -> ExperimentHandle:
    """Look up a registered experiment by id (e.g. ``"table1"``).

    The returned handle is called with a single
    :class:`~repro.engine.context.RunContext`.
    """
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def get_spec(experiment_id: str) -> ExperimentSpec:
    """The :class:`ExperimentSpec` of a registered experiment."""
    return get_experiment(experiment_id).spec


def run_experiment(
    experiment_id: str, ctx: RunContext, **extras
) -> ExperimentResult:
    """Run a registered experiment under a context (the new entry point)."""
    return get_experiment(experiment_id).run(ctx, **extras)


def suggest_experiment(experiment_id: str, n: int = 3) -> list[str]:
    """Closest registered ids to a misspelled one (CLI did-you-mean)."""
    import difflib

    return difflib.get_close_matches(experiment_id, sorted(_REGISTRY), n=n, cutoff=0.4)


def list_experiments() -> list[str]:
    """All registered experiment ids."""
    return sorted(_REGISTRY)


def all_specs() -> list[ExperimentSpec]:
    """Specs of every registered experiment, sorted by id."""
    return [_REGISTRY[experiment_id].spec for experiment_id in sorted(_REGISTRY)]
