"""Table 2: both attacks under cache-sweep vs interrupt noise.

A controlled comparison on one machine (Chrome on Linux): the
loop-counting and sweep-counting attacks are evaluated with no noise,
with the cache-sweep countermeasure (repeatedly evicting the LLC), and
with the spurious-interrupt countermeasure.

Paper values:  loop 95.7 / 92.6 / 62.0;  sweep 78.4 / 76.2 / 55.3.
Cache noise costs the sweep attack only 2.2 points while interrupt
noise costs it 23.1 — the smoking gun that its leakage is interrupts.
The interrupt defense also slows page loads 3.12 s → 3.61 s (+15.7 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attacker import LoopCountingAttacker, SweepCountingAttacker
from repro.core.pipeline import FingerprintingPipeline
from repro.defenses.cache_noise import CacheSweepNoise
from repro.defenses.interrupt_noise import PAGE_LOAD_OVERHEAD, interrupt_noise_hooks
from repro.experiments.base import ExperimentResult, format_rows, register
from repro.ml.crossval import CrossValResult
from repro.sim.machine import MachineConfig
from repro.workload.browser import CHROME, LINUX


@dataclass
class Table2Row:
    attack: str
    no_noise: CrossValResult
    cache_noise: CrossValResult
    interrupt_noise: CrossValResult

    def drop_from_cache_noise(self) -> float:
        return self.no_noise.top1.mean - self.cache_noise.top1.mean

    def drop_from_interrupt_noise(self) -> float:
        return self.no_noise.top1.mean - self.interrupt_noise.top1.mean


@dataclass
class Table2Result(ExperimentResult):
    rows: list[Table2Row]
    page_load_overhead: float

    def format_table(self) -> str:
        body = [
            [
                row.attack,
                row.no_noise.top1.as_percent(),
                row.cache_noise.top1.as_percent(),
                row.interrupt_noise.top1.as_percent(),
            ]
            for row in self.rows
        ]
        table = format_rows(
            ["attack", "no noise", "cache-sweep noise", "interrupt noise"], body
        )
        return (
            "Table 2: accuracy under noise countermeasures\n"
            + table
            + f"\ninterrupt-noise page-load overhead: +{(self.page_load_overhead - 1) * 100:.1f}%"
        )


@register(
    "table2",
    paper_ref="Table 2",
    description="both attacks under cache-sweep vs spurious-interrupt noise",
)
def run(ctx) -> Table2Result:
    """Run both attacks under the three noise conditions."""
    machine = MachineConfig(os=LINUX)
    rows: list[Table2Row] = []
    for attacker in (LoopCountingAttacker(), SweepCountingAttacker()):
        pipe = FingerprintingPipeline.from_spec(
            machine, CHROME, attacker=attacker, ctx=ctx
        )
        horizon = pipe.collector.spec.horizon_ns
        results = {
            "none": pipe.run_closed_world(),
            "cache": pipe.run_closed_world(noise=CacheSweepNoise().hooks(horizon)),
            "interrupt": pipe.run_closed_world(noise=interrupt_noise_hooks()),
        }
        rows.append(
            Table2Row(
                attack=attacker.name,
                no_noise=results["none"],
                cache_noise=results["cache"],
                interrupt_noise=results["interrupt"],
            )
        )
    return Table2Result(rows=rows, page_load_overhead=PAGE_LOAD_OVERHEAD)
