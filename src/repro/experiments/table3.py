"""Table 3: the loop-counting attack under incremental isolation.

A native (Python) loop-counting attacker — no browser timer degradation
— is evaluated while isolation mechanisms are added one at a time:
disable frequency scaling, pin attacker/victim to separate cores, bind
movable IRQs away with irqbalance, and finally run attacker and victim
in separate VMs.

Paper values (top-1 / top-5): 95.2/99.1 → 94.2/98.6 → 94.0/98.3 →
88.2/97.3 → 91.6/97.3.  Removing movable IRQs costs the most (but far
from everything — non-movable interrupts still leak), and VM isolation
*increases* accuracy via interrupt amplification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attacker import LoopCountingAttacker
from repro.core.pipeline import FingerprintingPipeline
from repro.experiments.base import ExperimentResult, format_rows, register
from repro.isolation.ladder import isolation_ladder
from repro.ml.crossval import CrossValResult
from repro.timers.spec import NATIVE_TIMER
from repro.workload.browser import CHROME


@dataclass
class Table3Row:
    mechanism: str
    result: CrossValResult


@dataclass
class Table3Result(ExperimentResult):
    rows: list[Table3Row]

    def format_table(self) -> str:
        body = [
            [row.mechanism, row.result.top1.as_percent(), row.result.top5.as_percent()]
            for row in self.rows
        ]
        return "Table 3: accuracy under isolation mechanisms (Python attacker)\n" + format_rows(
            ["isolation mechanism", "top-1", "top-5"], body
        )

    def accuracy_by_step(self) -> list[float]:
        return [row.result.top1.mean for row in self.rows]


@register(
    "table3",
    paper_ref="Table 3",
    description="native loop-counting attack under incremental isolation",
)
def run(ctx) -> Table3Result:
    """Evaluate the native attacker at every rung of the ladder.

    The victim still runs Chrome (it is the browser loading sites); the
    *attacker* is a native Python process, so it uses the undegraded
    system timer (``time.time()`` / ``CLOCK_MONOTONIC``).
    """
    rows: list[Table3Row] = []
    for step in isolation_ladder():
        pipe = FingerprintingPipeline.from_spec(
            step.machine,
            CHROME,
            attacker=LoopCountingAttacker(),
            timer=NATIVE_TIMER,
            ctx=ctx,
        )
        rows.append(Table3Row(mechanism=step.name, result=pipe.run_closed_world()))
    return Table3Result(rows=rows)
