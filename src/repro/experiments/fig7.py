"""Figure 7: example outputs of the three secure timers.

The paper plots observed-time-vs-real-time staircases for Tor's
quantized timer (Δ = 100 ms), Chrome's jittered timer (Δ = 0.1 ms) and
the proposed randomized timer.  We sample each timer densely over a
window and report structural properties: monotonicity, maximum
deviation from real time, and the number of distinct output values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.base import ExperimentResult, format_rows, register, sparkline
from repro.sim.events import MS
from repro.experiments.fig8 import TIMER_LINEUP


@dataclass
class TimerSample:
    name: str
    real_ns: np.ndarray
    observed_ns: np.ndarray

    @property
    def max_deviation_ms(self) -> float:
        return float(np.abs(self.observed_ns - self.real_ns).max() / MS)

    @property
    def n_distinct(self) -> int:
        return len(np.unique(self.observed_ns))

    @property
    def monotonic(self) -> bool:
        return bool(np.all(np.diff(self.observed_ns) >= 0))


@dataclass
class Fig7Result(ExperimentResult):
    samples: list[TimerSample]
    window_ms: float

    def format_table(self) -> str:
        body = [
            [
                s.name,
                "yes" if s.monotonic else "NO",
                f"{s.max_deviation_ms:.2f}",
                f"{s.n_distinct}",
                sparkline(s.observed_ns, width=48),
            ]
            for s in self.samples
        ]
        return (
            f"Figure 7: timer outputs over {self.window_ms:g}ms of real time\n"
            + format_rows(
                ["timer", "monotonic", "max |err| (ms)", "distinct values", "staircase"],
                body,
            )
        )


@register(
    "fig7",
    paper_ref="Figure 7",
    description="observed-vs-real staircases for the three secure timers",
)
def run(ctx, window_ms: float = 200.0) -> Fig7Result:
    """Sample each timer at 0.05 ms resolution over the window."""
    reals = np.arange(0, window_ms * MS, 0.05 * MS)
    samples = []
    for name, spec in TIMER_LINEUP:
        timer = spec.build(seed=ctx.seed)
        observed = np.array([timer.read(float(t)) for t in reals])
        samples.append(TimerSample(name=name, real_ns=reals, observed_ns=observed))
    return Fig7Result(samples=samples, window_ms=window_ms)
