"""Figure 8: real duration of one 5 ms attacker period per timer.

Fig 8 histograms how much *real* time one nominally-5-ms attacker loop
spans under each timer:

* quantized (Δ = 100 ms, Tor): exactly one 100 ms step — the attacker
  loses 5 ms granularity but measures 100 ms windows precisely;
* jittered (Δ = 0.1 ms, Chrome): tightly clustered around 5 ms
  (4.8–5.2 ms, roughly Gaussian);
* randomized (ours): anywhere from ~0 to ~100 ms — the attacker cannot
  know how much real time one loop took.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.base import ExperimentResult, format_rows, register
from repro.sim.events import MS
from repro.timers.spec import (
    CHROME_TIMER,
    RANDOMIZED_DEFENSE_TIMER,
    TOR_TIMER,
    TimerSpec,
)

#: The three timers compared in Figs 7 and 8, in the paper's order.
TIMER_LINEUP: tuple[tuple[str, TimerSpec], ...] = (
    ("Quantized (Tor, 100ms)", TOR_TIMER),
    ("Jittered (Chrome, 0.1ms)", CHROME_TIMER),
    ("Randomized (ours, 1ms)", RANDOMIZED_DEFENSE_TIMER),
)


@dataclass
class PeriodDurationSample:
    timer_name: str
    durations_ms: np.ndarray

    def stats(self) -> tuple[float, float, float, float]:
        d = self.durations_ms
        return float(d.min()), float(np.median(d)), float(d.max()), float(d.std())


@dataclass
class Fig8Result(ExperimentResult):
    samples: list[PeriodDurationSample]
    period_ms: float
    n_periods: int

    def format_table(self) -> str:
        body = []
        for s in self.samples:
            lo, med, hi, std = s.stats()
            body.append(
                [s.timer_name, f"{lo:.2f}", f"{med:.2f}", f"{hi:.2f}", f"{std:.2f}"]
            )
        return (
            f"Figure 8: real duration of one {self.period_ms:g}ms attacker loop "
            f"({self.n_periods} periods)\n"
            + format_rows(["timer", "min (ms)", "median", "max", "std"], body)
        )

    def sample_for(self, name_prefix: str) -> PeriodDurationSample:
        for s in self.samples:
            if s.timer_name.startswith(name_prefix):
                return s
        raise KeyError(name_prefix)


@register(
    "fig8",
    paper_ref="Figure 8",
    description="real duration of one attacker period under each timer",
)
def run(ctx, period_ms: float = 5.0, n_periods: int = 400) -> Fig8Result:
    """Measure back-to-back period durations under each timer.

    No victim or interrupts here — the point is the timer's effect on
    period-boundary detection in isolation.
    """
    samples = []
    for name, spec in TIMER_LINEUP:
        timer = spec.build(seed=ctx.seed)
        t = 0.0
        durations = []
        for _ in range(n_periods):
            t_next = timer.first_crossing(t, period_ms * MS)
            durations.append((t_next - t) / MS)
            t = t_next if t_next > t else t + 0.01 * MS
        samples.append(
            PeriodDurationSample(timer_name=name, durations_ms=np.array(durations))
        )
    return Fig8Result(samples=samples, period_ms=period_ms, n_periods=n_periods)
