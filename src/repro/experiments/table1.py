"""Table 1: loop-counting vs cache-occupancy attack across browsers/OSes.

For each browser x OS combination the paper reports closed-world top-1
accuracy of the loop-counting attack against the state-of-the-art
cache-occupancy (sweep-counting) attack, plus the open-world breakdown
(sensitive / non-sensitive / combined).  The loop-counting attack wins
in all but one configuration, with a Tor-specific top-5 row.

Paper reference values (closed world): Chrome/Linux 96.6 vs 91.4,
Chrome/Windows 92.5 vs 80.0, Chrome/macOS 94.4, Firefox/Linux 95.3 vs
80.0, Firefox/Windows 91.9 vs 87.7, Firefox/macOS 94.4, Safari/macOS
96.6 vs 72.6, Tor/Linux 49.8 vs 46.7 (top-5: 86.4 vs 71.9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.attacker import LoopCountingAttacker, SweepCountingAttacker
from repro.core.pipeline import FingerprintingPipeline, OpenWorldResult
from repro.experiments.base import ExperimentResult, format_rows, register
from repro.ml.crossval import CrossValResult
from repro.sim.machine import MachineConfig
from repro.stats.significance import TTestResult, students_t_test
from repro.stats.summary import MeanStd
from repro.workload.browser import (
    CHROME,
    FIREFOX,
    LINUX,
    MACOS,
    SAFARI,
    TOR_BROWSER,
    WINDOWS,
    Browser,
    OperatingSystem,
)

#: The browser x OS grid evaluated by the paper.
TABLE1_CONFIGS: tuple[tuple[Browser, OperatingSystem], ...] = (
    (CHROME, LINUX),
    (CHROME, WINDOWS),
    (CHROME, MACOS),
    (FIREFOX, LINUX),
    (FIREFOX, WINDOWS),
    (FIREFOX, MACOS),
    (SAFARI, MACOS),
    (TOR_BROWSER, LINUX),
)


@dataclass
class Table1Row:
    """One browser/OS configuration's results."""

    browser: str
    os_name: str
    timer_resolution_ms: float
    loop_closed: CrossValResult
    sweep_closed: CrossValResult
    significance: TTestResult
    loop_open: Optional[OpenWorldResult] = None
    sweep_open_combined: Optional[MeanStd] = None

    @property
    def loop_wins_closed(self) -> bool:
        return self.loop_closed.top1.mean >= self.sweep_closed.top1.mean


@dataclass
class Table1Result(ExperimentResult):
    rows: list[Table1Row]
    open_world: bool

    def format_table(self) -> str:
        header = [
            "browser", "os", "Δ(ms)",
            "loop top-1", "cache top-1", "loop top-5", "p",
        ]
        if self.open_world:
            header += ["OW sens", "OW non-s", "OW comb", "OW cache comb"]
        body = []
        for row in self.rows:
            cells = [
                row.browser,
                row.os_name,
                f"{row.timer_resolution_ms:g}",
                row.loop_closed.top1.as_percent(),
                row.sweep_closed.top1.as_percent(),
                row.loop_closed.top5.as_percent(),
                f"{row.significance.p_value:.2g}",
            ]
            if self.open_world:
                if row.loop_open is not None:
                    cells += [
                        row.loop_open.sensitive.as_percent(),
                        row.loop_open.non_sensitive.as_percent(),
                        row.loop_open.combined.as_percent(),
                        row.sweep_open_combined.as_percent()
                        if row.sweep_open_combined
                        else "-",
                    ]
                else:
                    cells += ["-", "-", "-", "-"]
            body.append(cells)
        return (
            "Table 1: classification accuracy, loop-counting vs cache-occupancy\n"
            + format_rows(header, body)
        )

    def loop_win_count(self) -> int:
        return sum(1 for row in self.rows if row.loop_wins_closed)


@register(
    "table1",
    paper_ref="Table 1",
    description="loop-counting vs cache-occupancy accuracy across browsers/OSes",
)
def run(
    ctx,
    configs: Optional[Sequence[tuple[Browser, OperatingSystem]]] = None,
    open_world: bool = True,
) -> Table1Result:
    """Evaluate both attacks on every browser/OS configuration."""
    rows: list[Table1Row] = []
    for browser, os_spec in configs or TABLE1_CONFIGS:
        machine = MachineConfig(os=os_spec)
        loop_pipe = FingerprintingPipeline.from_spec(
            machine, browser, attacker=LoopCountingAttacker(), ctx=ctx
        )
        sweep_pipe = FingerprintingPipeline.from_spec(
            machine, browser, attacker=SweepCountingAttacker(), ctx=ctx
        )
        loop_closed = loop_pipe.run_closed_world()
        sweep_closed = sweep_pipe.run_closed_world()
        significance = students_t_test(loop_closed.fold_top1, sweep_closed.fold_top1)
        loop_open = loop_pipe.run_open_world() if open_world else None
        sweep_open = sweep_pipe.run_open_world() if open_world else None
        rows.append(
            Table1Row(
                browser=browser.name,
                os_name=os_spec.name,
                timer_resolution_ms=browser.timer.resolution_ms,
                loop_closed=loop_closed,
                sweep_closed=sweep_closed,
                significance=significance,
                loop_open=loop_open,
                sweep_open_combined=sweep_open.combined if sweep_open else None,
            )
        )
    return Table1Result(rows=rows, open_world=open_world)
