"""Ablation: randomized-timer parameter sweep (DESIGN.md §7).

The paper proposes one randomized-timer configuration (α, β ~ U[5, 25],
Δ = 1 ms, threshold = 100 ms).  This ablation sweeps the parameters to
show what actually provides the security:

* the α/β range width sets how unpredictable each loop's real duration
  is — narrow ranges behave like a (defeatable) quantizer;
* the resync threshold bounds the timer's drift; a very low threshold
  re-tethers the timer to real time and weakens the defense;
* usability degrades as expected deviation grows, so the sweep reports
  the mean |observed − real| alongside attack accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.attacker import LoopCountingAttacker
from repro.core.pipeline import FingerprintingPipeline
from repro.experiments.base import ExperimentResult, format_rows, register
from repro.ml.crossval import CrossValResult
from repro.sim.events import MS
from repro.sim.machine import MachineConfig
from repro.timers.spec import TimerKind, TimerSpec
from repro.workload.browser import CHROME, LINUX


@dataclass
class TimerAblationRow:
    label: str
    alpha_range: tuple[int, int]
    beta_range: tuple[int, int]
    threshold_ms: float
    result: CrossValResult
    mean_deviation_ms: float


@dataclass
class TimerAblationResult(ExperimentResult):
    rows: list[TimerAblationRow]
    base_rate: float

    def format_table(self) -> str:
        body = [
            [
                row.label,
                f"U{list(row.alpha_range)}",
                f"{row.threshold_ms:g}",
                row.result.top1.as_percent(),
                f"{row.mean_deviation_ms:.1f}",
            ]
            for row in self.rows
        ]
        return (
            "Ablation: randomized-timer parameters "
            f"(base rate {self.base_rate * 100:.1f}%)\n"
            + format_rows(
                ["variant", "alpha/beta", "thresh (ms)", "top-1", "mean |err| (ms)"],
                body,
            )
        )


def _mean_deviation_ms(spec: TimerSpec, seed: int = 0, window_ms: float = 2_000.0) -> float:
    """Average |observed - real| over a sampling window."""
    timer = spec.build(seed=seed)
    reals = np.arange(0, window_ms * MS, 0.5 * MS)
    observed = np.array([timer.read(float(t)) for t in reals])
    return float(np.abs(observed - reals).mean() / MS)


#: The swept variants: the paper's config plus weakened/strengthened ones.
VARIANTS: tuple[tuple[str, tuple[int, int], float], ...] = (
    ("narrow range (U[2,4])", (2, 4), 100.0),
    ("paper (U[5,25])", (5, 25), 100.0),
    ("wide range (U[20,80])", (20, 80), 250.0),
    ("fast tether (U[2,4], 10ms)", (2, 4), 10.0),
)


@register(
    "ablation-timer",
    paper_ref="DESIGN.md §7",
    description="randomized-timer parameter sweep (range width, tether)",
)
def run(ctx) -> TimerAblationResult:
    """Sweep α/β ranges and thresholds of the randomized timer."""
    rows: list[TimerAblationRow] = []
    for label, span, threshold_ms in VARIANTS:
        spec = TimerSpec(
            TimerKind.RANDOMIZED,
            resolution_ns=1 * MS,
            alpha_range=span,
            beta_range=span,
            threshold_ns=threshold_ms * MS,
        )
        pipeline = FingerprintingPipeline.from_spec(
            MachineConfig(os=LINUX), CHROME,
            attacker=LoopCountingAttacker(), timer=spec, ctx=ctx,
        )
        rows.append(
            TimerAblationRow(
                label=label,
                alpha_range=span,
                beta_range=span,
                threshold_ms=threshold_ms,
                result=pipeline.run_closed_world(),
                mean_deviation_ms=_mean_deviation_ms(spec, seed=ctx.seed),
            )
        )
    return TimerAblationResult(rows=rows, base_rate=1.0 / ctx.scale.n_sites)
