"""The paper's published numbers, for paper-vs-measured reporting.

All values are from Cook et al., ISCA 2022 (Tables 1-4 and the running
text).  Accuracies are percentages; ``None`` marks cells the paper
leaves empty (the cache-occupancy baseline was not run on macOS).
"""

from __future__ import annotations

#: Table 1, closed world: (browser, OS) -> (loop top-1, cache top-1).
TABLE1_CLOSED = {
    ("Chrome 92", "Linux"): (96.6, 91.4),
    ("Chrome 92", "Windows"): (92.5, 80.0),
    ("Chrome 92", "macOS"): (94.4, None),
    ("Firefox 91", "Linux"): (95.3, 80.0),
    ("Firefox 91", "Windows"): (91.9, 87.7),
    ("Firefox 91", "macOS"): (94.4, None),
    ("Safari 14", "macOS"): (96.6, 72.6),
    ("Tor Browser 10", "Linux"): (49.8, 46.7),
}

#: Table 1, Tor top-5 row: (loop, cache).
TABLE1_TOR_TOP5 = (86.4, 71.9)

#: Table 1, open world: (browser, OS) ->
#: (loop sensitive, loop non-sensitive, loop combined, cache combined).
TABLE1_OPEN = {
    ("Chrome 92", "Linux"): (95.8, 99.4, 97.2, 86.4),
    ("Chrome 92", "Windows"): (91.4, 99.2, 94.5, 86.1),
    ("Chrome 92", "macOS"): (92.4, 97.6, 94.3, None),
    ("Firefox 91", "Linux"): (95.2, 99.9, 96.4, 87.4),
    ("Firefox 91", "Windows"): (90.9, 99.6, 93.7, 87.7),
    ("Firefox 91", "macOS"): (93.5, 98.6, 95.0, None),
    ("Safari 14", "macOS"): (95.1, 99.0, 96.7, 80.5),
    ("Tor Browser 10", "Linux"): (46.2, 89.8, 62.9, 62.9),
}

#: Table 2: attack -> (no noise, cache-sweep noise, interrupt noise).
TABLE2 = {
    "loop-counting": (95.7, 92.6, 62.0),
    "sweep-counting": (78.4, 76.2, 55.3),
}

#: §6.2: average page-load time without/with the interrupt-noise
#: extension, in seconds.
PAGE_LOAD_SECONDS = (3.12, 3.61)

#: Table 3: mechanism -> (top-1, top-5).
TABLE3 = {
    "Default": (95.2, 99.1),
    "+ Disable frequency scaling": (94.2, 98.6),
    "+ Pin to separate cores": (94.0, 98.3),
    "+ Remove IRQ interrupts": (88.2, 97.3),
    "+ Run in separate VMs": (91.6, 97.3),
}

#: Table 4: (timer, Δ ms, P ms) -> (top-1, top-5).
TABLE4 = {
    ("Jittered", 0.1, 5): (96.6, 99.4),
    ("Quantized", 100, 5): (86.0, 96.9),
    ("Randomized", 1, 5): (1.0, 5.1),
    ("Randomized", 1, 100): (1.9, 6.9),
    ("Randomized", 1, 500): (5.2, 13.7),
}

#: Fig 4: site -> Pearson r between loop and sweep averaged traces.
FIG4_CORRELATIONS = {
    "nytimes.com": 0.87,
    "amazon.com": 0.79,
    "weather.com": 0.94,
}

#: §5.2: fraction of >100 ns gaps attributed to interrupts.
ATTRIBUTION_FRACTION = 0.99

#: Fig 3: loop-counting counter range at P = 5 ms.
FIG3_COUNTER_RANGE = (21_000, 27_000)

#: Fig 6: minimum observed gap length (Meltdown-era kernel entry), ns.
FIG6_GAP_FLOOR_NS = 1_500.0

#: §4.2 background-noise robustness: accuracy without/with Slack+Spotify.
BACKGROUND_NOISE = (96.6, 93.4)
