"""Figure 5 and the §5.2 attribution claim.

Fig 5 plots, for three websites, the percentage of time the attacker's
core spends in interrupt handlers per 100 ms window, averaged over many
runs, with irqbalance keeping movable IRQs away — so nearly all handler
time is non-movable (softirqs, rescheduling IPIs, TLB shootdowns,
ticks).  The shape matches the loop-counting traces of Fig 3:
nytimes's activity concentrates in its first ~4 s, amazon spikes near
5 s and 10 s, and weather.com routinely triggers rescheduling
interrupts.

The same instrumented runs support the paper's headline proof: **over
99 % of attacker-visible execution gaps longer than 100 ns are caused
by interrupts**.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.base import ExperimentResult, format_rows, register, sparkline
from repro.sim.events import MS, seconds_to_ns
from repro.sim.interrupts import InterruptType
from repro.sim.machine import InterruptSynthesizer, MachineConfig, MachineRun
from repro.tracing.attribution import attribute_gaps
from repro.tracing.ebpf import KprobeTracer
from repro.tracing.histograms import interrupt_time_series
from repro.workload.browser import LINUX
from repro.workload.catalog import marquee_sites

#: Fig 5 splits handler time into softirq vs rescheduling interrupts.
SOFTIRQ_GROUP = (
    InterruptType.SOFTIRQ_NET_RX,
    InterruptType.SOFTIRQ_TIMER,
    InterruptType.SOFTIRQ_TASKLET,
    InterruptType.IRQ_WORK,
)
RESCHED_GROUP = (InterruptType.RESCHED_IPI, InterruptType.TLB_SHOOTDOWN)


@dataclass
class Fig5Row:
    site: str
    window_starts_ns: np.ndarray
    softirq_fraction: np.ndarray
    resched_fraction: np.ndarray

    @property
    def total_fraction(self) -> np.ndarray:
        return self.softirq_fraction + self.resched_fraction

    def peak_percent(self) -> float:
        return float(self.total_fraction.max() * 100)

    def resched_share(self) -> float:
        """Share of handler time due to rescheduling activity."""
        total = self.total_fraction.sum()
        return float(self.resched_fraction.sum() / total) if total > 0 else 0.0


@dataclass
class Fig5Result(ExperimentResult):
    rows: list[Fig5Row]
    attributed_fraction: float
    n_gaps: int
    n_runs: int

    def format_table(self) -> str:
        body = [
            [
                row.site,
                f"{row.peak_percent():.1f}%",
                f"{row.resched_share() * 100:.0f}%",
                sparkline(row.total_fraction),
            ]
            for row in self.rows
        ]
        table = format_rows(
            ["website", "peak handler time", "resched share", "handler-time profile"],
            body,
        )
        return (
            f"Figure 5: % time in interrupt handlers ({self.n_runs} runs/site)\n"
            + table
            + f"\n§5.2: {self.attributed_fraction * 100:.2f}% of {self.n_gaps} gaps "
            ">100ns attributed to interrupts"
        )


def _simulate_one(task) -> MachineRun:
    """Synthesize a single instrumented page load (module-level: picklable)."""
    machine, site, horizon_ns, run_seed = task
    synthesizer = InterruptSynthesizer(machine)
    rng = np.random.default_rng(run_seed)
    timeline = site.generate_load(rng, horizon_ns)
    return synthesizer.synthesize(timeline, style=site.style, rng=rng)


def _simulate_runs(
    machine: MachineConfig, site, n_runs: int, horizon_ns: int, seed: int, engine=None
) -> list[MachineRun]:
    tasks = [
        (machine, site, horizon_ns, seed * 7_001 + site.seed * 31 + k)
        for k in range(n_runs)
    ]
    if engine is not None:
        return engine.map(_simulate_one, tasks, stage="simulate")
    return [_simulate_one(task) for task in tasks]


@register(
    "fig5",
    paper_ref="Figure 5 / §5.2",
    description="interrupt handler-time profiles and gap attribution",
)
def run(ctx) -> Fig5Result:
    """Instrument runs with the eBPF tracer; aggregate handler time."""
    scale, seed = ctx.scale, ctx.seed
    n_runs = max(5, scale.traces_per_site // 2)
    horizon_ns = seconds_to_ns(15.0 if scale.name == "paper" else scale.trace_seconds)
    # The paper pins and irqbalances for this experiment so that almost
    # all observable handler time is non-movable.
    machine = MachineConfig(os=LINUX, irqbalance=True, pin_cores=True)
    rows: list[Fig5Row] = []
    attributed = 0
    total_gaps = 0
    for site in marquee_sites():
        runs = _simulate_runs(machine, site, n_runs, horizon_ns, seed, ctx.engine)
        times, softirq = interrupt_time_series(runs, window_ns=100 * MS, types=SOFTIRQ_GROUP)
        _, resched = interrupt_time_series(runs, window_ns=100 * MS, types=RESCHED_GROUP)
        rows.append(
            Fig5Row(
                site=site.name,
                window_starts_ns=times,
                softirq_fraction=softirq,
                resched_fraction=resched,
            )
        )
        report = attribute_gaps(KprobeTracer(runs[0]))
        attributed += report.n_attributed
        total_gaps += report.n_gaps
    return Fig5Result(
        rows=rows,
        attributed_fraction=attributed / total_gaps if total_gaps else 1.0,
        n_gaps=total_gaps,
        n_runs=n_runs,
    )
