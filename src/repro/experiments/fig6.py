"""Figure 6: per-type distributions of interrupt-caused gap lengths.

For softirqs, timer interrupts, IRQ work and network-receive IRQs, the
paper histograms the *total user-space execution gap* each interrupt
participates in, over 50 page loads spanning 10 websites.  Three
structural facts are checked here:

* every gap is longer than ~1.5 µs (Meltdown-era kernel-entry cost);
* the IRQ-work spike coincides with the timer-interrupt spike, because
  IRQ work cannot fire alone and typically runs inside a timer tick;
* softirq gaps are broader and longer-tailed than first-level handlers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.experiments.base import ExperimentResult, format_rows, register, sparkline
from repro.sim.events import US, seconds_to_ns
from repro.sim.interrupts import InterruptType
from repro.sim.machine import InterruptSynthesizer, MachineConfig
from repro.tracing.histograms import (
    FIG6_TYPES,
    GapLengthHistogram,
    gap_length_histograms,
    type_coincidence,
)
from repro.workload.browser import LINUX
from repro.workload.catalog import closed_world


@dataclass
class Fig6Result(ExperimentResult):
    histograms: Dict[InterruptType, GapLengthHistogram]
    n_loads: int
    n_sites: int
    #: Fraction of IRQ-work gaps that also contain a timer interrupt.
    irq_work_timer_coincidence: float

    def format_table(self) -> str:
        body = []
        for itype in FIG6_TYPES:
            hist = self.histograms[itype]
            body.append(
                [
                    itype.value,
                    f"{hist.n_samples}",
                    f"{hist.min_ns() / US:.2f}",
                    f"{hist.mode_ns() / US:.2f}",
                    sparkline(hist.counts, width=48),
                ]
            )
        return (
            f"Figure 6: gap-length distributions ({self.n_loads} loads, "
            f"{self.n_sites} sites)\n"
            + format_rows(
                ["interrupt type", "n", "min (us)", "mode (us)", "distribution 0-12us"],
                body,
            )
            + f"\nIRQ-work gaps also containing a timer tick: "
            f"{self.irq_work_timer_coincidence * 100:.0f}%"
        )


def _simulate_load(task):
    """Synthesize one page load (module-level: picklable for the engine)."""
    machine, site, horizon_ns, run_seed = task
    synthesizer = InterruptSynthesizer(machine)
    rng = np.random.default_rng(run_seed)
    timeline = site.generate_load(rng, horizon_ns)
    return synthesizer.synthesize(timeline, style=site.style, rng=rng)


@register(
    "fig6",
    paper_ref="Figure 6",
    description="per-type distributions of interrupt-caused gap lengths",
)
def run(ctx) -> Fig6Result:
    """Histogram gap lengths over many page loads.

    The paper runs on a core that *does* receive network IRQs here (it
    needs network-receive samples), so no irqbalance; pinning stays on
    to avoid scheduler-contention gaps polluting the histograms.
    """
    scale, seed = ctx.scale, ctx.seed
    n_sites = min(10, scale.n_sites)
    loads_per_site = max(2, min(5, scale.traces_per_site // 3))
    horizon_ns = seconds_to_ns(min(scale.trace_seconds, 8.0))
    machine = MachineConfig(os=LINUX, pin_cores=True)
    tasks = [
        (machine, site, horizon_ns, seed * 9_973 + site.seed * 17 + k)
        for site in closed_world(n_sites)
        for k in range(loads_per_site)
    ]
    if ctx.engine is not None:
        runs = ctx.engine.map(_simulate_load, tasks, stage="simulate")
    else:
        runs = [_simulate_load(task) for task in tasks]
    # Trace every core so all interrupt types (incl. network RX, which
    # is bound to its source's affinity core) are observed.
    histograms = gap_length_histograms(runs, core=-1)
    coincidence = type_coincidence(
        runs, InterruptType.IRQ_WORK, InterruptType.TIMER, core=-1
    )
    return Fig6Result(
        histograms=histograms,
        n_loads=len(runs),
        n_sites=n_sites,
        irq_work_timer_coincidence=coincidence,
    )
