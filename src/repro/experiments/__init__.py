"""One module per paper table/figure, plus the registry and CLI runner."""

from repro.experiments.base import (
    Experiment,
    ExperimentHandle,
    ExperimentResult,
    ExperimentSpec,
    FunctionExperiment,
    all_specs,
    format_rows,
    get_experiment,
    get_spec,
    list_experiments,
    register,
    run_experiment,
    sparkline,
    suggest_experiment,
)

__all__ = [
    "Experiment", "ExperimentHandle", "ExperimentResult", "ExperimentSpec",
    "FunctionExperiment", "all_specs", "format_rows", "get_experiment",
    "get_spec", "list_experiments", "register", "run_experiment",
    "sparkline", "suggest_experiment",
]
