"""One module per paper table/figure, plus the registry and CLI runner."""

from repro.experiments.base import (
    ExperimentResult,
    format_rows,
    get_experiment,
    list_experiments,
    register,
    sparkline,
)

__all__ = [
    "ExperimentResult", "format_rows", "get_experiment", "list_experiments",
    "register", "sparkline",
]
