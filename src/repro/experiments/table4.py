"""Table 4: timer defenses against the loop-counting attack.

The attack (Python attacker, closed world) is evaluated under each
timer: Chrome's default jittered timer (Δ = 0.1 ms), a Tor-style
quantized timer (Δ = 100 ms), and the paper's randomized timer at
attacker period lengths P = 5, 100 and 500 ms.

Paper values (top-1 / top-5): jittered 96.6/99.4; quantized 86.0/96.9;
randomized P=5 1.0/5.1, P=100 1.9/6.9, P=500 5.2/13.7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attacker import LoopCountingAttacker
from repro.core.pipeline import FingerprintingPipeline
from repro.defenses.timer_defense import quantized_defense, randomized_defense
from repro.experiments.base import ExperimentResult, format_rows, register
from repro.ml.crossval import CrossValResult
from repro.sim.machine import MachineConfig
from repro.timers.spec import CHROME_TIMER, TimerSpec
from repro.workload.browser import CHROME, LINUX


@dataclass
class Table4Row:
    timer_name: str
    resolution_ms: float
    period_ms: float
    result: CrossValResult


@dataclass
class Table4Result(ExperimentResult):
    rows: list[Table4Row]
    base_rate: float

    def format_table(self) -> str:
        body = [
            [
                row.timer_name,
                f"{row.resolution_ms:g}",
                f"{row.period_ms:g}",
                row.result.top1.as_percent(),
                row.result.top5.as_percent(),
            ]
            for row in self.rows
        ]
        return (
            "Table 4: accuracy with different timers "
            f"(base rate {self.base_rate * 100:.1f}%)\n"
            + format_rows(["timer", "Δ (ms)", "P (ms)", "top-1", "top-5"], body)
        )


def _evaluate(timer: TimerSpec, period_ms: float, ctx) -> CrossValResult:
    pipe = FingerprintingPipeline.from_spec(
        MachineConfig(os=LINUX),
        CHROME,
        attacker=LoopCountingAttacker(),
        timer=timer,
        ctx=ctx,
        scale=ctx.scale.with_(period_ms=period_ms),
    )
    return pipe.run_closed_world()


@register(
    "table4",
    paper_ref="Table 4",
    description="timer defenses vs the loop-counting attack",
)
def run(ctx) -> Table4Result:
    """Evaluate each timer configuration of Table 4."""
    quantized = quantized_defense(resolution_ms=100.0)
    randomized = randomized_defense()
    period = ctx.scale.period_ms
    rows = [
        Table4Row("Jittered", 0.1, period, _evaluate(CHROME_TIMER, period, ctx)),
        Table4Row(
            "Quantized", 100.0, period, _evaluate(quantized.spec, period, ctx)
        ),
    ]
    for p_ms in (period, 100.0, 500.0):
        rows.append(
            Table4Row(
                "Randomized", 1.0, p_ms, _evaluate(randomized.spec, p_ms, ctx)
            )
        )
    return Table4Result(rows=rows, base_rate=1.0 / ctx.scale.n_sites)
