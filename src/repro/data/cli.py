"""``biggerfish data`` — build, inspect, verify and merge sharded stores.

Usage::

    biggerfish data build store/ --sites 20 --traces 30 --jobs 4
    biggerfish data build store/ --sites 20 --traces 30   # resume: skips
                                                          # checksum-valid shards
    biggerfish data ls store/
    biggerfish data ls store/ --shards
    biggerfish data verify store/
    biggerfish data merge out/ store-a/ store-b/
    python -m repro.data build store/ --sites 4 --traces 2

Exit status: 0 success, 1 verification failures or build errors, 2 usage
errors (unknown subcommand, bad shapes, config mismatch on resume).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.data.manifest import DataError, DatasetConfig, DatasetManifest
from repro.data.reader import ShardedDataset, verify_store
from repro.data.writer import (
    BROWSER_KEYS,
    SHARD_SITES_ENV_VAR,
    build_dataset,
    merge_stores,
)

#: Same worker-count knob as the experiment runner.
JOBS_ENV_VAR = "BIGGERFISH_JOBS"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="biggerfish data",
        description="Sharded trace-dataset stores: build, inspect, verify, merge.",
    )
    commands = parser.add_subparsers(dest="command", metavar="COMMAND")

    build = commands.add_parser(
        "build",
        help="collect a dataset into (or resume) a sharded store",
        description=(
            "Partition the closed-world catalog into shards and collect them "
            "in parallel; re-running with the same config skips shards whose "
            "checksums already match."
        ),
    )
    build.add_argument("store", help="store directory (created if missing)")
    build.add_argument(
        "--sites", type=int, required=True, help="closed-world catalog prefix size"
    )
    build.add_argument(
        "--traces", type=int, required=True, help="traces collected per site"
    )
    build.add_argument(
        "--trace-seconds",
        type=float,
        default=2.0,
        help="trace duration in seconds (default: 2.0)",
    )
    build.add_argument(
        "--period-ms",
        type=float,
        default=10.0,
        help="measurement period in milliseconds (default: 10.0)",
    )
    build.add_argument(
        "--browser",
        default="chrome",
        choices=sorted(BROWSER_KEYS),
        help="browser profile traces are collected under (default: chrome)",
    )
    build.add_argument("--seed", type=int, default=0, help="collection seed")
    build.add_argument(
        "--shard-sites",
        type=int,
        default=None,
        metavar="N",
        help=f"catalog sites per shard (default: ${SHARD_SITES_ENV_VAR} or 8)",
    )
    build.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=f"worker processes (default: ${JOBS_ENV_VAR} or 1)",
    )
    build.add_argument(
        "--retries", type=int, default=None, help="per-task retry budget"
    )
    build.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="abandon and retry shard tasks running longer than this",
    )

    ls = commands.add_parser(
        "ls",
        help="summarize a store from its manifest (and lazy labels)",
        description="Print the store's config, size and class breakdown.",
    )
    ls.add_argument("store", help="store directory")
    ls.add_argument(
        "--shards", action="store_true", help="also list per-shard rows/sites/checksums"
    )

    verify = commands.add_parser(
        "verify",
        help="re-hash every shard against the manifest",
        description=(
            "Check manifest schema, shard existence, sizes, SHA-256 checksums, "
            "label counts and matrix shapes.  Exit 1 on any problem."
        ),
    )
    verify.add_argument("store", help="store directory")

    merge = commands.add_parser(
        "merge",
        help="concatenate complete stores into a new store",
        description=(
            "Copy the sources' shards verbatim into one store with disjoint "
            "site ranges.  Sources must share trace length, period, duration "
            "and browser."
        ),
    )
    merge.add_argument("out", help="output store directory (must not be a store yet)")
    merge.add_argument("sources", nargs="+", help="two or more source stores")
    return parser


def _resolve_jobs(value: Optional[int]) -> Optional[int]:
    if value is not None:
        return value
    raw = os.environ.get(JOBS_ENV_VAR, "").strip()
    return int(raw) if raw else None


def _progress(message: str) -> None:
    print(message, file=sys.stderr)


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.engine.engine import ExecutionEngine

    config = DatasetConfig(
        n_sites=args.sites,
        traces_per_site=args.traces,
        trace_seconds=args.trace_seconds,
        period_ms=args.period_ms,
        browser=args.browser,
        seed=args.seed,
    )
    jobs = _resolve_jobs(args.jobs)
    engine = None
    if jobs is not None and jobs > 1:
        engine = ExecutionEngine(
            jobs=jobs, retries=args.retries, task_timeout=args.task_timeout
        )
    manifest = build_dataset(
        args.store,
        config,
        shard_sites=args.shard_sites,
        engine=engine,
        progress=_progress,
    )
    print(
        f"{args.store}: {manifest.n_rows} rows x {manifest.trace_length} samples "
        f"in {len(manifest.shards)} shard(s)"
    )
    return 0


def _cmd_ls(args: argparse.Namespace) -> int:
    manifest = DatasetManifest.load(args.store)
    config = manifest.config
    print(f"store:          {args.store}")
    print(f"status:         {manifest.status}")
    print(f"schema:         v{manifest.schema_version} (repro {manifest.repro_version})")
    print(
        f"config:         {config.n_sites} sites x {config.traces_per_site} traces, "
        f"{config.trace_seconds}s @ {config.period_ms}ms, "
        f"{config.browser}, seed {config.seed}"
    )
    print(
        f"size:           {manifest.n_rows} rows x {manifest.trace_length} samples, "
        f"{manifest.n_bytes} bytes in {len(manifest.shards)} shard(s)"
    )
    if manifest.status == "complete":
        dataset = ShardedDataset(args.store)
        print(f"classes:        {len(dataset.classes)}")
    if args.shards:
        for entry in manifest.shards:
            print(
                f"  {entry.name}  rows={entry.n_rows}  "
                f"sites=[{entry.site_start},{entry.site_stop})  "
                f"sha256={entry.sha256[:12]}..."
            )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    problems = verify_store(args.store)
    if problems:
        for problem in problems:
            print(f"FAIL  {problem}")
        print(f"{args.store}: {len(problems)} problem(s)")
        return 1
    manifest = DatasetManifest.load(args.store)
    print(
        f"{args.store}: OK — {len(manifest.shards)} shard(s), "
        f"{manifest.n_rows} rows verified"
    )
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    manifest = merge_stores(args.sources, args.out, progress=_progress)
    print(
        f"{args.out}: {manifest.n_rows} rows in {len(manifest.shards)} shard(s) "
        f"from {len(args.sources)} store(s)"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    handler = {
        "build": _cmd_build,
        "ls": _cmd_ls,
        "verify": _cmd_verify,
        "merge": _cmd_merge,
    }[args.command]
    try:
        return handler(args)
    except DataError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2 if args.command in ("build", "merge") else 1


if __name__ == "__main__":
    sys.exit(main())
