"""Reading a sharded store: lazy, zero-copy, layout-independent.

:class:`ShardedDataset` is the read side of :mod:`repro.data`.  Opening
a store touches only ``dataset.json``; labels load on first use without
paging trace data in (:func:`repro.data.format.read_labels` decompresses
just the label member), and each shard's trace matrix is a memory-mapped
view created on demand and cached — the OS pages rows in as they are
read, so streaming a terabyte store needs working-set memory only.

The central invariant is **layout independence**: every row has a global
index fixed by the build config (site order x trace order), so
:meth:`ShardedDataset.stream_batches` with a given seed yields
bit-identical batches whether the store was built as one shard or one
hundred, serially or in parallel, fresh or resumed.  The test suite
asserts this, and training through ``--dataset`` relies on it.
"""

from __future__ import annotations

import bisect
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.data.format import open_x_mmap, read_labels, read_meta, shard_checksum
from repro.data.manifest import DataError, DatasetManifest


class ShardedDataset:
    """Read-only handle on a complete store directory.

    Construction validates the manifest only; shard payloads are mapped
    lazily.  Arrays returned by :meth:`shard_x` and :meth:`rows` may
    alias the files on disk and must not be written to; use
    :meth:`stacked` or :meth:`to_trace_dataset` for an owned copy.
    """

    def __init__(self, store_dir) -> None:
        self.store_dir = Path(store_dir)
        self.manifest = DatasetManifest.load(self.store_dir)
        if self.manifest.status != "complete":
            raise DataError(
                f"{self.store_dir}: store is still building; finish or re-run "
                f"'biggerfish data build' first"
            )
        if not self.manifest.shards:
            raise DataError(f"{self.store_dir}: store has no shards")
        # Global row index of each shard's first row, plus total.
        self._row_starts: List[int] = []
        total = 0
        for entry in self.manifest.shards:
            self._row_starts.append(total)
            total += entry.n_rows
        self._n_rows = total
        self._x_cache: Dict[str, np.ndarray] = {}
        self._labels: Optional[np.ndarray] = None

    # -- lazy accessors -------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def trace_length(self) -> int:
        return self.manifest.trace_length

    @property
    def labels(self) -> np.ndarray:
        """All row labels, in global row order; never touches trace data."""
        if self._labels is None:
            parts = [
                read_labels(self.store_dir / entry.name)
                for entry in self.manifest.shards
            ]
            self._labels = np.concatenate(parts) if parts else np.array([], dtype=str)
            if len(self._labels) != self._n_rows:
                raise DataError(
                    f"{self.store_dir}: label count {len(self._labels)} != "
                    f"manifest row count {self._n_rows}"
                )
        return self._labels

    @property
    def classes(self) -> List[str]:
        """Distinct labels, sorted; label data only, no trace pages."""
        return sorted(set(self.labels.tolist()))

    def shard_meta(self, index: int) -> dict:
        return read_meta(self.store_dir / self.manifest.shards[index].name)

    def shard_x(self, index: int) -> np.ndarray:
        """The shard's trace matrix as a cached read-only mmap view."""
        entry = self.manifest.shards[index]
        cached = self._x_cache.get(entry.name)
        if cached is None:
            cached = open_x_mmap(self.store_dir / entry.name)
            if cached.ndim != 2 or len(cached) != entry.n_rows:
                raise DataError(
                    f"{self.store_dir / entry.name}: shard shape {cached.shape} "
                    f"disagrees with manifest ({entry.n_rows} rows)"
                )
            self._x_cache[entry.name] = cached
        return cached

    # -- row addressing -------------------------------------------------

    def _locate(self, row: int) -> Tuple[int, int]:
        """Map a global row index to ``(shard index, local row)``."""
        if not 0 <= row < self._n_rows:
            raise IndexError(f"row {row} out of range [0, {self._n_rows})")
        shard = bisect.bisect_right(self._row_starts, row) - 1
        return shard, row - self._row_starts[shard]

    def rows(self, indices) -> np.ndarray:
        """Gather global rows into a fresh ``(len(indices), trace_length)``
        matrix, reading only the pages those rows live on."""
        indices = np.asarray(indices, dtype=np.int64)
        out = np.empty((len(indices), self.trace_length), dtype=np.float64)
        for position, row in enumerate(indices):
            shard, local = self._locate(int(row))
            out[position] = self.shard_x(shard)[local]
        obs.counter("data.rows_read").inc(len(indices))
        return out

    # -- whole-store views ---------------------------------------------

    def stacked(self) -> Tuple[np.ndarray, List[str]]:
        """Materialize the whole store as ``(X, labels)`` — the
        :meth:`repro.core.collector.TraceBatch.stacked` shape."""
        x = np.empty((self._n_rows, self.trace_length), dtype=np.float64)
        for index, entry in enumerate(self.manifest.shards):
            start = self._row_starts[index]
            x[start : start + entry.n_rows] = self.shard_x(index)
        obs.counter("data.rows_read").inc(self._n_rows)
        return x, self.labels.tolist()

    def to_trace_dataset(self):
        """An owned in-memory :class:`~repro.core.dataset.TraceDataset`."""
        from repro.core.dataset import TraceDataset

        x, labels = self.stacked()
        return TraceDataset(
            x=x,
            labels=labels,
            metadata={
                "source": "repro.data",
                "store": str(self.store_dir),
                "config": self.manifest.config.as_dict(),
                "repro_version": self.manifest.repro_version,
            },
        )

    # -- streaming ------------------------------------------------------

    def stream_order(self, seed: int, epoch: int = 0) -> np.ndarray:
        """The global row order :meth:`stream_batches` visits.

        Part of the public contract: the permutation is drawn over
        global row indices only, so it is identical for every shard
        layout of the same config.  The ``data.roundtrip`` oracle uses
        it to invert the shuffle when comparing a streamed read-back
        against an in-memory collection.
        """
        return np.random.default_rng([seed, epoch]).permutation(self._n_rows)

    def stream_batches(
        self,
        batch_size: int,
        *,
        seed: int = 0,
        epochs: int = 1,
        drop_last: bool = False,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Seeded shuffled ``(x, labels)`` batches for training.

        Rows are visited in :meth:`stream_order`, which depends only on
        ``(n_rows, seed, epoch)`` — so the batch sequence is bit-identical
        for any shard layout of the same config, the property
        ``biggerfish train --dataset`` depends on for store-vs-in-memory
        parity.  Rows are gathered per batch, so memory stays at one
        batch regardless of store size.
        """
        if batch_size < 1:
            raise DataError(f"batch_size must be >= 1, got {batch_size}")
        labels = self.labels
        for epoch in range(epochs):
            order = self.stream_order(seed, epoch)
            for start in range(0, self._n_rows, batch_size):
                batch = order[start : start + batch_size]
                if drop_last and len(batch) < batch_size:
                    break
                obs.counter("data.batches").inc()
                yield self.rows(batch), labels[batch]


def verify_store(store_dir) -> List[str]:
    """Every problem found in a store; an empty list means it is sound.

    Checks the manifest parses, every shard file exists with its
    recorded size and SHA-256, label counts match manifest row counts,
    and mapped shapes match ``trace_length``.
    """
    store_dir = Path(store_dir)
    problems: List[str] = []
    try:
        manifest = DatasetManifest.load(store_dir)
    except DataError as exc:
        return [str(exc)]
    if manifest.status != "complete":
        problems.append(f"{store_dir}: status is {manifest.status!r}, not complete")
    with obs.span("data.verify", shards=len(manifest.shards)):
        for entry in manifest.shards:
            path = store_dir / entry.name
            if not path.exists():
                problems.append(f"{entry.name}: missing shard file")
                continue
            size = path.stat().st_size
            if size != entry.n_bytes:
                problems.append(
                    f"{entry.name}: {size} bytes on disk, manifest says "
                    f"{entry.n_bytes}"
                )
                continue
            if shard_checksum(path) != entry.sha256:
                problems.append(f"{entry.name}: checksum mismatch")
                continue
            try:
                labels = read_labels(path)
                x = open_x_mmap(path)
            except Exception as exc:  # corrupt member, bad header, ...
                problems.append(f"{entry.name}: unreadable: {exc}")
                continue
            if len(labels) != entry.n_rows:
                problems.append(
                    f"{entry.name}: {len(labels)} labels, manifest says "
                    f"{entry.n_rows} rows"
                )
            if x.shape != (entry.n_rows, manifest.trace_length):
                problems.append(
                    f"{entry.name}: matrix shape {x.shape}, expected "
                    f"({entry.n_rows}, {manifest.trace_length})"
                )
    return problems
