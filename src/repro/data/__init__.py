"""Sharded, schema-versioned trace-dataset storage.

The paper's pipeline separates slow trace collection from training —
Shusterman et al. spent days of Selenium time per corpus, and the
loop-counting variant reproduced here inherits that shape — so datasets
must outlive the process that collected them.  :mod:`repro.data` stores
a collection run as content-addressed shards (``shard-XXXX.npz``) plus a
``dataset.json`` manifest, built in parallel through the
:class:`~repro.engine.engine.ExecutionEngine` and read back through
zero-copy memory-mapped handles with a seeded streaming batch iterator.

Layer map (each importable on its own):

* :mod:`repro.data.format` — deterministic shard bytes; mmap reads
* :mod:`repro.data.manifest` — ``dataset.json`` schema + validation
* :mod:`repro.data.writer` — parallel, resumable builds; store merging
* :mod:`repro.data.reader` — :class:`ShardedDataset` + store verification
* :mod:`repro.data.cli` — ``biggerfish data build/ls/verify/merge``

On-disk format spec and evolution policy: ``docs/DATA.md``.
"""

from repro.data.format import ShardFormatError
from repro.data.manifest import (
    DATA_SCHEMA_VERSION,
    DataError,
    DatasetConfig,
    DatasetManifest,
    ShardEntry,
)
from repro.data.reader import ShardedDataset, verify_store
from repro.data.writer import build_dataset, merge_stores

__all__ = [
    "DATA_SCHEMA_VERSION",
    "DataError",
    "DatasetConfig",
    "DatasetManifest",
    "ShardEntry",
    "ShardFormatError",
    "ShardedDataset",
    "build_dataset",
    "merge_stores",
    "verify_store",
]
