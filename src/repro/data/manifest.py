"""``dataset.json`` — the schema-versioned manifest of a sharded store.

The manifest is the store's single source of truth: which shards exist,
how many rows and which site range each one carries, and the SHA-256
every shard file must hash to.  Readers refuse stores whose
``schema_version`` they don't understand; writers refuse to resume into
a store whose recorded :class:`DatasetConfig` differs from the build
being asked for.  The schema-evolution policy (what may be added
compatibly, what forces a version bump) is specified in
``docs/DATA.md``.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

#: Bump on any incompatible change to the manifest or shard layout.
DATA_SCHEMA_VERSION = 1

#: File name of the manifest inside a store directory.
MANIFEST_NAME = "dataset.json"

#: Shard file-name pattern; the index is the shard's position in the
#: site partition, not a content hash — content addressing lives in the
#: manifest's per-shard ``sha256``.
SHARD_NAME_FORMAT = "shard-{index:04d}.npz"


class DataError(ValueError):
    """A store, manifest or shard violates the repro.data contract."""


@dataclass(frozen=True)
class DatasetConfig:
    """Everything that determines a store's traces, bit for bit.

    Mirrors the knobs of :class:`~repro.core.collector.TraceCollector`
    at the granularity the CLI exposes: the closed-world catalog prefix,
    per-site trace count, trace shape and browser, plus the collection
    seed.  Two stores built from equal configs hold identical rows
    regardless of sharding, worker count or resume history.
    """

    n_sites: int
    traces_per_site: int
    trace_seconds: float = 2.0
    period_ms: float = 10.0
    browser: str = "chrome"
    seed: int = 0
    noise: Optional[str] = None

    def __post_init__(self) -> None:
        if self.n_sites < 1 or self.traces_per_site < 1:
            raise DataError("need at least one site and one trace per site")
        if self.trace_seconds <= 0 or self.period_ms <= 0:
            raise DataError("trace_seconds and period_ms must be positive")

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DatasetConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise DataError(f"unknown dataset config field(s): {sorted(unknown)}")
        try:
            return cls(**data)
        except TypeError as exc:
            raise DataError(f"bad dataset config: {exc}") from None


@dataclass(frozen=True)
class ShardEntry:
    """One shard's identity: name, extent and required checksum."""

    name: str
    sha256: str
    n_rows: int
    n_bytes: int
    #: Half-open site range ``[site_start, site_stop)`` into the
    #: config's closed-world catalog.
    site_start: int
    site_stop: int

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ShardEntry":
        try:
            return cls(
                name=str(data["name"]),
                sha256=str(data["sha256"]),
                n_rows=int(data["n_rows"]),
                n_bytes=int(data["n_bytes"]),
                site_start=int(data["site_start"]),
                site_stop=int(data["site_stop"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DataError(f"bad shard entry {data!r}: {exc}") from None


@dataclass
class DatasetManifest:
    """The parsed ``dataset.json`` of one store directory."""

    config: DatasetConfig
    trace_length: int = 0
    repro_version: str = ""
    #: "building" while shards are still being produced, "complete" once
    #: every shard landed; readers require "complete".
    status: str = "building"
    shards: List[ShardEntry] = field(default_factory=list)
    schema_version: int = DATA_SCHEMA_VERSION

    @property
    def n_rows(self) -> int:
        return sum(entry.n_rows for entry in self.shards)

    @property
    def n_bytes(self) -> int:
        return sum(entry.n_bytes for entry in self.shards)

    def shard_by_name(self) -> Dict[str, ShardEntry]:
        return {entry.name: entry for entry in self.shards}

    def as_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "repro_version": self.repro_version,
            "status": self.status,
            "config": self.config.as_dict(),
            "trace_length": self.trace_length,
            "n_rows": self.n_rows,
            "shards": [entry.as_dict() for entry in self.shards],
        }

    def save(self, store_dir) -> Path:
        """Atomically (re)write ``dataset.json`` in ``store_dir``."""
        store_dir = Path(store_dir)
        path = store_dir / MANIFEST_NAME
        tmp = store_dir / f".{MANIFEST_NAME}.tmp-{os.getpid()}"
        tmp.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, store_dir) -> "DatasetManifest":
        """Parse ``store_dir/dataset.json``, validating the schema."""
        path = Path(store_dir) / MANIFEST_NAME
        if not path.exists():
            raise DataError(f"{store_dir}: not a dataset store (no {MANIFEST_NAME})")
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise DataError(f"{path}: malformed JSON: {exc}") from None
        if not isinstance(data, dict):
            raise DataError(f"{path}: manifest is not a JSON object")
        version = data.get("schema_version")
        if version != DATA_SCHEMA_VERSION:
            raise DataError(
                f"{path}: unsupported dataset schema {version!r} "
                f"(this build reads version {DATA_SCHEMA_VERSION})"
            )
        status = str(data.get("status", ""))
        if status not in ("building", "complete"):
            raise DataError(f"{path}: unknown status {status!r}")
        if not isinstance(data.get("config"), dict):
            raise DataError(f"{path}: missing config block")
        if not isinstance(data.get("shards"), list):
            raise DataError(f"{path}: missing shards list")
        manifest = cls(
            config=DatasetConfig.from_dict(data["config"]),
            trace_length=int(data.get("trace_length", 0)),
            repro_version=str(data.get("repro_version", "")),
            status=status,
            shards=[ShardEntry.from_dict(entry) for entry in data["shards"]],
        )
        names = [entry.name for entry in manifest.shards]
        if len(names) != len(set(names)):
            raise DataError(f"{path}: duplicate shard names")
        return manifest
