"""Sharded dataset builder: partition a site catalog, collect in parallel.

:func:`build_dataset` turns a :class:`~repro.data.manifest.DatasetConfig`
into a store directory: the closed-world catalog prefix is partitioned
into contiguous site ranges of ``shard_sites`` sites each, every range
becomes one shard built by an independent task, and the tasks fan out
over the repo's :class:`~repro.engine.engine.ExecutionEngine` —
inheriting its retries, per-task timeouts and pool-respawn fault
tolerance for free.  Each task derives every RNG stream from the config
and its site range alone, so shard bytes are a pure function of
``(config, site range)``: parallel builds equal serial builds, and a
retried task rewrites byte-identical data.

Builds are **resumable**: shard files are written atomically (temp name
+ rename), a ``building`` manifest is kept up to date on disk, and a
re-run with the same config skips every shard whose file already hashes
to its recorded checksum — only missing or corrupt shards are rebuilt.
An existing shard file that predates its manifest entry (a build killed
between the rename and the manifest update) is adopted after a
structural validation instead of being rebuilt.
"""

from __future__ import annotations

import dataclasses
import os
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.data.format import (
    ShardFormatError,
    read_labels,
    read_meta,
    shard_checksum,
    write_shard,
)
from repro.data.manifest import (
    SHARD_NAME_FORMAT,
    DataError,
    DatasetConfig,
    DatasetManifest,
    ShardEntry,
)

#: Environment variable overriding the default sites-per-shard.
SHARD_SITES_ENV_VAR = "BIGGERFISH_DATA_SHARD_SITES"

#: Default number of catalog sites per shard.
DEFAULT_SHARD_SITES = 8

#: Browser keys the config accepts (lower-case, CLI-friendly).
BROWSER_KEYS = ("chrome", "firefox", "safari", "tor")


def resolve_shard_sites(shard_sites: Optional[int] = None) -> int:
    """Explicit value, else ``$BIGGERFISH_DATA_SHARD_SITES``, else 8."""
    if shard_sites is None:
        env = os.environ.get(SHARD_SITES_ENV_VAR, "").strip()
        shard_sites = int(env) if env else DEFAULT_SHARD_SITES
    if shard_sites < 1:
        raise DataError(f"shard_sites must be >= 1, got {shard_sites}")
    return shard_sites


def config_browser(config: DatasetConfig):
    """The :class:`~repro.workload.browser.Browser` a config names."""
    from repro.workload.browser import CHROME, FIREFOX, SAFARI, TOR_BROWSER

    browsers = {
        "chrome": CHROME,
        "firefox": FIREFOX,
        "safari": SAFARI,
        "tor": TOR_BROWSER,
    }
    try:
        base = browsers[config.browser]
    except KeyError:
        raise DataError(
            f"unknown browser {config.browser!r}; pick from {sorted(browsers)}"
        ) from None
    return dataclasses.replace(base, trace_seconds=config.trace_seconds)


def collector_for(config: DatasetConfig, engine=None, cache=None):
    """The collector a config describes — shared with the verify oracle.

    Both the shard tasks and the ``data.roundtrip`` reference path build
    their collector here, so "store contents == in-memory collection" is
    a statement about the *store machinery*, not about two collectors
    that merely look similar.
    """
    from repro.core.collector import TraceCollector
    from repro.sim.events import MS
    from repro.sim.machine import MachineConfig

    if config.noise is not None:
        raise DataError(
            "dataset schema v1 records noise=None only; collect noisy datasets "
            "through the library API and save them monolithically"
        )
    return TraceCollector(
        MachineConfig(),
        config_browser(config),
        period_ns=int(config.period_ms * MS),
        seed=config.seed,
        engine=engine,
        cache=cache,
    )


def config_sites(config: DatasetConfig) -> list:
    """The closed-world catalog prefix the config covers."""
    from repro.workload.catalog import closed_world

    return closed_world(config.n_sites)


def partition_sites(n_sites: int, shard_sites: int) -> List[Tuple[int, int]]:
    """Contiguous half-open ``[start, stop)`` site ranges, one per shard."""
    return [
        (start, min(start + shard_sites, n_sites))
        for start in range(0, n_sites, shard_sites)
    ]


def shard_meta(config: DatasetConfig, site_start: int, site_stop: int) -> dict:
    sites = config_sites(config)[site_start:site_stop]
    return {
        "config": config.as_dict(),
        "site_start": site_start,
        "site_stop": site_stop,
        "sites": [site.name for site in sites],
    }


def _build_shard_task(task: tuple) -> Tuple[ShardEntry, int]:
    """Collect and write one shard; the engine's unit of work.

    Module-level so it pickles into worker processes; everything the
    shard contains derives from ``(config, site range)``, so a retry —
    or a concurrent attempt after a timeout — rewrites identical bytes.
    Returns the manifest entry plus the shard's trace length.
    """
    config_dict, site_start, site_stop, name, store_dir = task
    config = DatasetConfig.from_dict(config_dict)
    collector = collector_for(config)
    sites = config_sites(config)[site_start:site_stop]
    with obs.span("data.shard", shard=name, sites=len(sites)):
        x, labels = collector.collect(sites, config.traces_per_site).stacked()
        path = Path(store_dir) / name
        tmp = path.with_name(f".{name}.tmp-{os.getpid()}")
        info = write_shard(tmp, x, labels, shard_meta(config, site_start, site_stop))
        os.replace(tmp, path)
    obs.counter("data.shards_written").inc()
    obs.counter("data.rows_written").inc(info.n_rows)
    entry = ShardEntry(
        name=name,
        sha256=info.sha256,
        n_rows=info.n_rows,
        n_bytes=info.n_bytes,
        site_start=site_start,
        site_stop=site_stop,
    )
    return entry, x.shape[1]


def _adopt_existing(
    path: Path, config: DatasetConfig, site_start: int, site_stop: int
) -> Optional[Tuple[ShardEntry, int]]:
    """Validate an unmanifested shard file left by an interrupted build.

    Atomic renames mean any file present is complete; it is adopted iff
    its metadata names exactly this config and site range and its label
    count matches the expected row count.  Anything else is rebuilt.
    """
    try:
        meta = read_meta(path)
        labels = read_labels(path)
    except (ShardFormatError, OSError, ValueError):
        return None
    expected_rows = (site_stop - site_start) * config.traces_per_site
    if (
        meta.get("config") != config.as_dict()
        or meta.get("site_start") != site_start
        or meta.get("site_stop") != site_stop
        or len(labels) != expected_rows
    ):
        return None
    from repro.data.format import open_x_mmap

    try:
        x = open_x_mmap(path)
    except (ShardFormatError, OSError, ValueError):
        return None
    if x.ndim != 2 or len(x) != expected_rows:
        return None
    entry = ShardEntry(
        name=path.name,
        sha256=shard_checksum(path),
        n_rows=expected_rows,
        n_bytes=path.stat().st_size,
        site_start=site_start,
        site_stop=site_stop,
    )
    return entry, x.shape[1]


def build_dataset(
    store_dir,
    config: DatasetConfig,
    *,
    shard_sites: Optional[int] = None,
    engine=None,
    progress=None,
) -> DatasetManifest:
    """Build (or resume) the sharded store for ``config`` in ``store_dir``.

    ``engine`` is an optional :class:`~repro.engine.engine.ExecutionEngine`;
    without one, shards build serially in-process.  ``progress`` is an
    optional ``callable(str)`` the CLI uses to narrate long builds.
    Returns the completed manifest.
    """
    from repro import __version__

    store_dir = Path(store_dir)
    store_dir.mkdir(parents=True, exist_ok=True)
    shard_sites = resolve_shard_sites(shard_sites)
    ranges = partition_sites(config.n_sites, shard_sites)

    previous: dict = {}
    manifest_path = store_dir / "dataset.json"
    if manifest_path.exists():
        existing = DatasetManifest.load(store_dir)
        if existing.config != config:
            raise DataError(
                f"{store_dir} already holds a dataset built from a different "
                f"config; refusing to mix generations (use a new directory)"
            )
        previous = existing.shard_by_name()

    manifest = DatasetManifest(
        config=config, repro_version=__version__, status="building"
    )
    trace_length = 0
    pending: List[tuple] = []
    placed: List[Optional[ShardEntry]] = [None] * len(ranges)

    with obs.span("data.build", shards=len(ranges), sites=config.n_sites):
        for index, (site_start, site_stop) in enumerate(ranges):
            name = SHARD_NAME_FORMAT.format(index=index)
            path = store_dir / name
            entry = previous.get(name)
            if (
                entry is not None
                and entry.site_start == site_start
                and entry.site_stop == site_stop
                and path.exists()
                and shard_checksum(path) == entry.sha256
            ):
                placed[index] = entry
                obs.counter("data.shards_skipped").inc()
                if progress is not None:
                    progress(f"data: {name} up to date, skipping")
                continue
            if entry is None and path.exists():
                adopted = _adopt_existing(path, config, site_start, site_stop)
                if adopted is not None:
                    placed[index], trace_length = adopted
                    obs.counter("data.shards_skipped").inc()
                    if progress is not None:
                        progress(f"data: {name} adopted from interrupted build")
                    continue
            pending.append((config.as_dict(), site_start, site_stop, name, str(store_dir)))

        # Record what is already valid before dispatching, so a crash
        # mid-build leaves a resumable "building" manifest behind.
        manifest.shards = [entry for entry in placed if entry is not None]
        manifest.save(store_dir)

        if pending:
            if progress is not None:
                progress(
                    f"data: building {len(pending)}/{len(ranges)} shard(s) in "
                    f"{store_dir}"
                )
            if engine is not None:
                outcomes = engine.map(_build_shard_task, pending, stage="data.build")
            else:
                outcomes = [_build_shard_task(task) for task in pending]
            for entry, length in outcomes:
                index = int(entry.name.split("-")[1].split(".")[0])
                placed[index] = entry
                trace_length = length

    entries = [entry for entry in placed if entry is not None]
    if len(entries) != len(ranges):
        raise DataError(f"{store_dir}: build finished with missing shards")
    if trace_length == 0:
        # Every shard was reused; read one header for the length.
        from repro.data.format import open_x_mmap

        trace_length = open_x_mmap(store_dir / entries[0].name).shape[1]
    manifest.shards = entries
    manifest.trace_length = int(trace_length)
    manifest.status = "complete"
    manifest.save(store_dir)
    if progress is not None:
        progress(
            f"data: {manifest.n_rows} rows x {manifest.trace_length} samples in "
            f"{len(entries)} shard(s), {manifest.n_bytes} bytes"
        )
    return manifest


def merge_stores(sources: Sequence, store_dir, progress=None) -> DatasetManifest:
    """Merge complete stores into a new store at ``store_dir``.

    Shard files are copied verbatim (checksums carry over) and renamed
    into one contiguous sequence; site ranges are offset so they stay
    disjoint.  Sources must agree on schema, trace length and trace
    shape (``trace_seconds``/``period_ms``/``browser``).  The merged
    manifest's config concatenates the site counts under the first
    source's other settings — a merged store is a *serving* artifact:
    its rows are exactly its sources', but it is no longer rebuildable
    from its config alone (see docs/DATA.md).
    """
    from repro import __version__

    if len(sources) < 2:
        raise DataError("merge needs at least two source stores")
    store_dir = Path(store_dir)
    if (store_dir / "dataset.json").exists():
        raise DataError(f"{store_dir}: already a dataset store; merge into a new dir")
    manifests = [DatasetManifest.load(source) for source in sources]
    for source, manifest in zip(sources, manifests):
        if manifest.status != "complete":
            raise DataError(f"{source}: store is incomplete; finish the build first")
    first = manifests[0]
    for source, other in zip(sources[1:], manifests[1:]):
        if other.trace_length != first.trace_length:
            raise DataError(
                f"{source}: trace length {other.trace_length} != "
                f"{first.trace_length}; refusing to merge"
            )
        for field_name in ("trace_seconds", "period_ms", "browser"):
            if getattr(other.config, field_name) != getattr(first.config, field_name):
                raise DataError(
                    f"{source}: config field {field_name!r} differs; merged rows "
                    f"would not be comparable"
                )
    store_dir.mkdir(parents=True, exist_ok=True)
    merged = DatasetManifest(
        config=dataclasses.replace(
            first.config, n_sites=sum(m.config.n_sites for m in manifests)
        ),
        trace_length=first.trace_length,
        repro_version=__version__,
        status="building",
    )
    index = 0
    site_offset = 0
    with obs.span("data.merge", sources=len(sources)):
        for source, manifest in zip(sources, manifests):
            for entry in manifest.shards:
                name = SHARD_NAME_FORMAT.format(index=index)
                source_path = Path(source) / entry.name
                if shard_checksum(source_path) != entry.sha256:
                    raise DataError(
                        f"{source_path}: checksum mismatch; run "
                        f"'biggerfish data verify {source}' and rebuild"
                    )
                tmp = store_dir / f".{name}.tmp-{os.getpid()}"
                tmp.write_bytes(source_path.read_bytes())
                os.replace(tmp, store_dir / name)
                merged.shards.append(
                    ShardEntry(
                        name=name,
                        sha256=entry.sha256,
                        n_rows=entry.n_rows,
                        n_bytes=entry.n_bytes,
                        site_start=entry.site_start + site_offset,
                        site_stop=entry.site_stop + site_offset,
                    )
                )
                index += 1
            site_offset += manifest.config.n_sites
    merged.status = "complete"
    merged.save(store_dir)
    if progress is not None:
        progress(
            f"data: merged {len(sources)} store(s) into {store_dir}: "
            f"{merged.n_rows} rows in {len(merged.shards)} shard(s)"
        )
    return merged
