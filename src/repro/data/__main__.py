"""``python -m repro.data`` — alias for ``biggerfish data``."""

import sys

from repro.data.cli import main

if __name__ == "__main__":
    sys.exit(main())
