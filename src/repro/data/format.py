"""The on-disk shard format behind :mod:`repro.data`.

A shard is a ``.npz`` archive (a plain zip) with exactly three members,
written byte-deterministically so checksums are stable across rebuilds:

* ``x.npy`` — the ``(n_rows, trace_length)`` float64 trace matrix,
  **stored uncompressed** (``ZIP_STORED``) so the reader can memory-map
  it in place: :func:`open_x_mmap` locates the member's data offset
  inside the zip and hands back an ``np.memmap`` view — the zero-copy
  streaming path, no decompression, no whole-file read;
* ``labels.npy`` — the per-row labels as a fixed-width unicode array
  (never pickled objects), deflate-compressed;
* ``meta.json`` — free-form shard metadata, deflate-compressed.

Labels and metadata load without touching ``x.npy`` at all
(:func:`read_labels` / :func:`read_meta` decompress only their own zip
member), which is what makes catalog-level queries on a terabyte store
cheap.  The full format specification lives in ``docs/DATA.md``.
"""

from __future__ import annotations

import hashlib
import io
import json
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import obs

#: Member names inside each shard archive.
X_MEMBER = "x.npy"
LABELS_MEMBER = "labels.npy"
META_MEMBER = "meta.json"

#: Fixed zip timestamp (the DOS epoch) so shard bytes — and therefore
#: checksums — depend only on content, never on build time.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)

#: Size of a zip local-file-header before the variable name/extra fields.
_LOCAL_HEADER_BASE = 30


class ShardFormatError(ValueError):
    """A shard archive is malformed, truncated or from another layout."""


@dataclass(frozen=True)
class ShardInfo:
    """What :func:`write_shard` produced, ready for a manifest entry."""

    n_rows: int
    n_bytes: int
    sha256: str


def _npy_bytes(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.lib.format.write_array(buffer, array, allow_pickle=False)
    return buffer.getvalue()


def write_shard(path, x: np.ndarray, labels, meta: dict) -> ShardInfo:
    """Write one shard archive; returns its row count, size and checksum.

    ``x`` must be a 2-D float64 matrix with one label per row.  The
    archive is assembled in memory so the checksum covers exactly the
    bytes on disk; callers that need atomicity write to a temp name and
    rename.
    """
    x = np.ascontiguousarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ShardFormatError(f"shard matrix must be 2-D, got shape {x.shape}")
    labels = list(labels)
    if len(labels) != len(x):
        raise ShardFormatError(f"{len(labels)} labels for {len(x)} rows")
    if len(x) == 0:
        raise ShardFormatError("refusing to write an empty shard")
    label_array = np.array([str(label) for label in labels])
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w") as archive:
        _write_member(archive, X_MEMBER, _npy_bytes(x), zipfile.ZIP_STORED)
        _write_member(
            archive, LABELS_MEMBER, _npy_bytes(label_array), zipfile.ZIP_DEFLATED
        )
        meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
        _write_member(archive, META_MEMBER, meta_bytes, zipfile.ZIP_DEFLATED)
    blob = buffer.getvalue()
    Path(path).write_bytes(blob)
    return ShardInfo(
        n_rows=len(x), n_bytes=len(blob), sha256=hashlib.sha256(blob).hexdigest()
    )


def _write_member(
    archive: zipfile.ZipFile, name: str, payload: bytes, compress_type: int
) -> None:
    info = zipfile.ZipInfo(name, date_time=_ZIP_EPOCH)
    info.compress_type = compress_type
    # Regular-file external attributes (0644) for deterministic bytes.
    info.external_attr = 0o644 << 16
    archive.writestr(info, payload)


def shard_checksum(path) -> str:
    """SHA-256 of the shard file's bytes (streamed, not loaded whole)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def read_labels(path) -> np.ndarray:
    """The shard's label array, without touching the trace payload."""
    with zipfile.ZipFile(path) as archive:
        payload = _member_bytes(archive, path, LABELS_MEMBER)
    labels = np.load(io.BytesIO(payload), allow_pickle=False)
    return labels.astype(str)


def read_meta(path) -> dict:
    """The shard's metadata dict, without touching the trace payload."""
    with zipfile.ZipFile(path) as archive:
        payload = _member_bytes(archive, path, META_MEMBER)
    meta = json.loads(payload.decode("utf-8"))
    if not isinstance(meta, dict):
        raise ShardFormatError(f"{path}: {META_MEMBER} is not a JSON object")
    return meta


def _member_bytes(archive: zipfile.ZipFile, path, name: str) -> bytes:
    try:
        return archive.read(name)
    except KeyError:
        raise ShardFormatError(f"{path}: missing archive member {name!r}") from None


def open_x_mmap(path) -> np.ndarray:
    """Zero-copy handle on the shard's trace matrix.

    Locates ``x.npy`` inside the zip, parses its npy header in place and
    memory-maps the raw array data at its file offset — the OS pages
    rows in on demand, nothing is decompressed or copied up front.  The
    returned array is **read-only** and aliases the file.

    Falls back to an ordinary (copying) load — counted on the
    ``data.mmap_fallbacks`` metric — when the member is compressed or
    oddly laid out, so schema-compatible shards from foreign writers
    still read correctly, just not zero-copy.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        with zipfile.ZipFile(handle) as archive:
            try:
                info = archive.getinfo(X_MEMBER)
            except KeyError:
                raise ShardFormatError(
                    f"{path}: missing archive member {X_MEMBER!r}"
                ) from None
            if info.compress_type != zipfile.ZIP_STORED:
                obs.counter("data.mmap_fallbacks").inc()
                return np.load(io.BytesIO(archive.read(X_MEMBER)), allow_pickle=False)
            # The central directory's name/extra lengths can differ from
            # the local header's, so re-read them at the member itself.
            handle.seek(info.header_offset)
            local = handle.read(_LOCAL_HEADER_BASE)
            if len(local) != _LOCAL_HEADER_BASE or local[:4] != b"PK\x03\x04":
                raise ShardFormatError(f"{path}: corrupt local header for {X_MEMBER}")
            name_len = int.from_bytes(local[26:28], "little")
            extra_len = int.from_bytes(local[28:30], "little")
            data_offset = info.header_offset + _LOCAL_HEADER_BASE + name_len + extra_len
            handle.seek(data_offset)
            try:
                version = np.lib.format.read_magic(handle)
                shape, fortran_order, dtype = _read_array_header(handle, version)
            except ValueError as exc:
                raise ShardFormatError(f"{path}: bad npy header: {exc}") from None
            array_offset = handle.tell()
    if fortran_order:
        obs.counter("data.mmap_fallbacks").inc()
        with zipfile.ZipFile(path) as archive:
            return np.load(io.BytesIO(archive.read(X_MEMBER)), allow_pickle=False)
    if int(np.prod(shape)) == 0:
        return np.empty(shape, dtype=dtype)
    return np.memmap(path, dtype=dtype, mode="r", offset=array_offset, shape=shape)


def _read_array_header(handle, version):
    if version == (1, 0):
        return np.lib.format.read_array_header_1_0(handle)
    if version == (2, 0):
        return np.lib.format.read_array_header_2_0(handle)
    raise ValueError(f"unsupported npy format version {version}")
