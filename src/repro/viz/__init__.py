"""Dependency-free SVG figure rendering."""

from repro.viz.figures import RENDERERS, render
from repro.viz.svg import PALETTE, Axis, Plot, stack_plots

__all__ = ["RENDERERS", "render", "PALETTE", "Axis", "Plot", "stack_plots"]
