"""A small dependency-free SVG drawing layer.

matplotlib is not available in this environment, so figures are emitted
as hand-built SVG.  The layer covers exactly what the paper's figures
need: line plots (Figs 4, 7), step plots (Fig 7's staircases), filled
histograms (Figs 6, 8), heat strips (Fig 3's shaded traces) and stacked
area plots (Fig 5), with axes, ticks, titles and simple legends.

Everything works in *data coordinates*: a :class:`Plot` owns the data→
pixel transform; marks clip to the plot area.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

#: A categorical palette (colorblind-safe Okabe-Ito).
PALETTE = (
    "#0072B2",  # blue
    "#D55E00",  # vermillion
    "#009E73",  # green
    "#CC79A7",  # purple
    "#E69F00",  # orange
    "#56B4E9",  # sky
    "#F0E442",  # yellow
    "#000000",  # black
)


def _fmt(value: float) -> str:
    """Compact numeric formatting for SVG attributes."""
    return f"{value:.2f}".rstrip("0").rstrip(".")


def _nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        return [lo]
    raw_step = (hi - lo) / max(n - 1, 1)
    magnitude = 10 ** np.floor(np.log10(raw_step))
    for multiplier in (1, 2, 2.5, 5, 10):
        step = multiplier * magnitude
        if step >= raw_step:
            break
    first = np.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-9 * step:
        ticks.append(float(t))
        t += step
    return ticks or [lo]


@dataclass
class Axis:
    """One axis: data range plus an optional label."""

    lo: float
    hi: float
    label: str = ""

    def __post_init__(self) -> None:
        if not np.isfinite(self.lo) or not np.isfinite(self.hi):
            raise ValueError(f"axis range must be finite: [{self.lo}, {self.hi}]")
        if self.hi <= self.lo:
            self.hi = self.lo + 1.0

    def scale(self, values: np.ndarray, px_lo: float, px_hi: float) -> np.ndarray:
        """Map data values into pixel coordinates."""
        values = np.asarray(values, dtype=np.float64)
        fraction = (values - self.lo) / (self.hi - self.lo)
        return px_lo + fraction * (px_hi - px_lo)


class Plot:
    """One SVG chart with axes and a list of marks."""

    def __init__(
        self,
        x: Axis,
        y: Axis,
        width: int = 560,
        height: int = 220,
        title: str = "",
        margin: tuple[int, int, int, int] = (34, 14, 30, 58),
    ):
        if width < 100 or height < 60:
            raise ValueError("plot too small to render")
        self.x = x
        self.y = y
        self.width = width
        self.height = height
        self.title = title
        self.margin_top, self.margin_right, self.margin_bottom, self.margin_left = margin
        self._body: list[str] = []
        self._legend: list[tuple[str, str]] = []

    # ------------------------------------------------------------------
    # coordinate transforms
    # ------------------------------------------------------------------

    @property
    def _plot_left(self) -> float:
        return self.margin_left

    @property
    def _plot_right(self) -> float:
        return self.width - self.margin_right

    @property
    def _plot_top(self) -> float:
        return self.margin_top

    @property
    def _plot_bottom(self) -> float:
        return self.height - self.margin_bottom

    def _px(self, xs, ys) -> tuple[np.ndarray, np.ndarray]:
        return (
            self.x.scale(xs, self._plot_left, self._plot_right),
            self.y.scale(ys, self._plot_bottom, self._plot_top),
        )

    # ------------------------------------------------------------------
    # marks
    # ------------------------------------------------------------------

    def line(self, xs, ys, color: str = PALETTE[0], width: float = 1.4,
             label: str = "", dashed: bool = False) -> "Plot":
        """Polyline through the points."""
        px, py = self._px(xs, ys)
        if len(px) < 2:
            raise ValueError("a line needs at least two points")
        points = " ".join(f"{_fmt(a)},{_fmt(b)}" for a, b in zip(px, py))
        dash = ' stroke-dasharray="5,3"' if dashed else ""
        self._body.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="{_fmt(width)}"{dash} clip-path="url(#plotclip)"/>'
        )
        if label:
            self._legend.append((label, color))
        return self

    def steps(self, xs, ys, color: str = PALETTE[0], width: float = 1.4,
              label: str = "") -> "Plot":
        """Staircase (post-step) line — Fig 7's timer outputs."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if len(xs) < 2:
            raise ValueError("steps need at least two points")
        step_x = np.repeat(xs, 2)[1:]
        step_y = np.repeat(ys, 2)[:-1]
        return self.line(step_x, step_y, color=color, width=width, label=label)

    def bars(self, edges, counts, color: str = PALETTE[0], label: str = "") -> "Plot":
        """Histogram bars from bin edges + counts (Figs 6, 8)."""
        edges = np.asarray(edges, dtype=np.float64)
        counts = np.asarray(counts, dtype=np.float64)
        if len(edges) != len(counts) + 1:
            raise ValueError("need len(edges) == len(counts) + 1")
        zero_px = self.y.scale(np.array([max(self.y.lo, 0.0)]),
                               self._plot_bottom, self._plot_top)[0]
        for left, right, count in zip(edges[:-1], edges[1:], counts):
            if count <= 0:
                continue
            (x0, x1), (y1,) = self._px([left, right], [count])[0], (
                self._px([left], [count])[1]
            )
            top = y1
            self._body.append(
                f'<rect x="{_fmt(x0)}" y="{_fmt(top)}" '
                f'width="{_fmt(max(x1 - x0 - 0.5, 0.5))}" '
                f'height="{_fmt(max(zero_px - top, 0.0))}" fill="{color}" '
                f'fill-opacity="0.75" clip-path="url(#plotclip)"/>'
            )
        if label:
            self._legend.append((label, color))
        return self

    def area(self, xs, lower, upper, color: str = PALETTE[0],
             opacity: float = 0.5, label: str = "") -> "Plot":
        """Filled band between two curves (Fig 5's stacked areas)."""
        xs = np.asarray(xs, dtype=np.float64)
        lower = np.broadcast_to(np.asarray(lower, dtype=np.float64), xs.shape)
        upper = np.asarray(upper, dtype=np.float64)
        px, py_hi = self._px(xs, upper)
        _, py_lo = self._px(xs, lower)
        forward = " ".join(f"{_fmt(a)},{_fmt(b)}" for a, b in zip(px, py_hi))
        backward = " ".join(
            f"{_fmt(a)},{_fmt(b)}" for a, b in zip(px[::-1], py_lo[::-1])
        )
        self._body.append(
            f'<polygon points="{forward} {backward}" fill="{color}" '
            f'fill-opacity="{_fmt(opacity)}" stroke="none" clip-path="url(#plotclip)"/>'
        )
        if label:
            self._legend.append((label, color))
        return self

    def heat_strip(self, values, y0: float, y1: float, cmap: str = "blues") -> "Plot":
        """A shaded horizontal strip — one Fig 3 trace row.

        ``values`` are normalized 0..1; darker cells mean *smaller*
        values (less throughput = more interrupt time), matching the
        paper's shading.
        """
        values = np.clip(np.asarray(values, dtype=np.float64), 0.0, 1.0)
        if len(values) == 0:
            raise ValueError("heat strip needs values")
        n = len(values)
        xs = np.linspace(self.x.lo, self.x.hi, n + 1)
        px = self.x.scale(xs, self._plot_left, self._plot_right)
        (py0,) = self.y.scale(np.array([y0]), self._plot_bottom, self._plot_top)
        (py1,) = self.y.scale(np.array([y1]), self._plot_bottom, self._plot_top)
        top, bottom = min(py0, py1), max(py0, py1)
        for i, value in enumerate(values):
            shade = int(235 * value)  # 0 -> black, 1 -> near-white
            color = (
                f"rgb({shade},{shade},255)" if cmap == "blues"
                else f"rgb({shade},{shade},{shade})"
            )
            self._body.append(
                f'<rect x="{_fmt(px[i])}" y="{_fmt(top)}" '
                f'width="{_fmt(px[i + 1] - px[i] + 0.3)}" '
                f'height="{_fmt(bottom - top)}" fill="{color}"/>'
            )
        return self

    def hline(self, y: float, color: str = "#888", dashed: bool = True) -> "Plot":
        """Horizontal reference line."""
        (py,) = self.y.scale(np.array([y]), self._plot_bottom, self._plot_top)
        dash = ' stroke-dasharray="4,3"' if dashed else ""
        self._body.append(
            f'<line x1="{_fmt(self._plot_left)}" y1="{_fmt(py)}" '
            f'x2="{_fmt(self._plot_right)}" y2="{_fmt(py)}" stroke="{color}"{dash}/>'
        )
        return self

    def text(self, x: float, y: float, content: str, size: int = 10,
             color: str = "#333") -> "Plot":
        """Annotation at data coordinates."""
        px, py = self._px([x], [y])
        self._body.append(
            f'<text x="{_fmt(px[0])}" y="{_fmt(py[0])}" font-size="{size}" '
            f'fill="{color}">{html.escape(content)}</text>'
        )
        return self

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def _axes_svg(self) -> list[str]:
        parts = [
            f'<rect x="{_fmt(self._plot_left)}" y="{_fmt(self._plot_top)}" '
            f'width="{_fmt(self._plot_right - self._plot_left)}" '
            f'height="{_fmt(self._plot_bottom - self._plot_top)}" '
            'fill="none" stroke="#444" stroke-width="1"/>'
        ]
        for tick in _nice_ticks(self.x.lo, self.x.hi):
            (px,) = self.x.scale(np.array([tick]), self._plot_left, self._plot_right)
            parts.append(
                f'<line x1="{_fmt(px)}" y1="{_fmt(self._plot_bottom)}" '
                f'x2="{_fmt(px)}" y2="{_fmt(self._plot_bottom + 4)}" stroke="#444"/>'
                f'<text x="{_fmt(px)}" y="{_fmt(self._plot_bottom + 16)}" '
                f'font-size="9" text-anchor="middle" fill="#333">{_fmt(tick)}</text>'
            )
        for tick in _nice_ticks(self.y.lo, self.y.hi):
            (py,) = self.y.scale(np.array([tick]), self._plot_bottom, self._plot_top)
            parts.append(
                f'<line x1="{_fmt(self._plot_left - 4)}" y1="{_fmt(py)}" '
                f'x2="{_fmt(self._plot_left)}" y2="{_fmt(py)}" stroke="#444"/>'
                f'<text x="{_fmt(self._plot_left - 7)}" y="{_fmt(py + 3)}" '
                f'font-size="9" text-anchor="end" fill="#333">{_fmt(tick)}</text>'
            )
        if self.x.label:
            parts.append(
                f'<text x="{_fmt((self._plot_left + self._plot_right) / 2)}" '
                f'y="{_fmt(self.height - 6)}" font-size="10" text-anchor="middle" '
                f'fill="#111">{html.escape(self.x.label)}</text>'
            )
        if self.y.label:
            cx, cy = 13, (self._plot_top + self._plot_bottom) / 2
            parts.append(
                f'<text x="{_fmt(cx)}" y="{_fmt(cy)}" font-size="10" '
                f'text-anchor="middle" fill="#111" '
                f'transform="rotate(-90 {_fmt(cx)} {_fmt(cy)})">'
                f"{html.escape(self.y.label)}</text>"
            )
        if self.title:
            parts.append(
                f'<text x="{_fmt(self._plot_left)}" y="{_fmt(self._plot_top - 8)}" '
                f'font-size="11" font-weight="bold" fill="#111">'
                f"{html.escape(self.title)}</text>"
            )
        return parts

    def _legend_svg(self) -> list[str]:
        parts = []
        x = self._plot_right - 8
        y = self._plot_top + 12
        for label, color in reversed(self._legend):
            parts.append(
                f'<rect x="{_fmt(x - 10)}" y="{_fmt(y - 8)}" width="10" height="8" '
                f'fill="{color}"/>'
                f'<text x="{_fmt(x - 15)}" y="{_fmt(y)}" font-size="9" '
                f'text-anchor="end" fill="#333">{html.escape(label)}</text>'
            )
            y += 13
        return parts

    def render(self) -> str:
        """The complete SVG document."""
        clip = (
            f'<clipPath id="plotclip"><rect x="{_fmt(self._plot_left)}" '
            f'y="{_fmt(self._plot_top)}" '
            f'width="{_fmt(self._plot_right - self._plot_left)}" '
            f'height="{_fmt(self._plot_bottom - self._plot_top)}"/></clipPath>'
        )
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}" '
            'font-family="Helvetica,Arial,sans-serif">',
            f"<defs>{clip}</defs>",
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            *self._body,
            *self._axes_svg(),
            *self._legend_svg(),
            "</svg>",
        ]
        return "\n".join(parts)

    def save(self, path) -> None:
        """Write the SVG to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.render())


def stack_plots(plots: Sequence[Plot], title: str = "") -> str:
    """Stack several rendered plots vertically into one SVG document."""
    if not plots:
        raise ValueError("nothing to stack")
    width = max(p.width for p in plots)
    offset = 24 if title else 0
    height = sum(p.height for p in plots) + offset
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="Helvetica,Arial,sans-serif">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="16" font-size="13" font-weight="bold" '
            f'text-anchor="middle" fill="#111">{html.escape(title)}</text>'
        )
    y = offset
    for plot in plots:
        inner = plot.render()
        # Strip the outer <svg> wrapper and re-embed translated.
        body = inner.split("\n", 1)[1].rsplit("</svg>", 1)[0]
        parts.append(f'<g transform="translate(0 {y})">{body}</g>')
        y += plot.height
    parts.append("</svg>")
    return "\n".join(parts)
