"""SVG renderers for each experiment result.

Each ``render_*`` function takes the result object produced by the
matching :mod:`repro.experiments` module and returns a complete SVG
document resembling the paper's figure.  The CLI writes these out with
``biggerfish <exp> --save-dir figures/``.
"""

from __future__ import annotations

import numpy as np

from repro.sim.events import MS, SEC, US
from repro.viz.svg import PALETTE, Axis, Plot, stack_plots


def render_fig3(result) -> str:
    """Fig 3: shaded loop-counting traces, one strip per site."""
    plots = []
    for trace in result.traces:
        vector = trace.to_vector()
        lo, hi = vector.min(), vector.max()
        normalized = (vector - lo) / max(hi - lo, 1e-9)
        seconds = trace.spec.horizon_ns / SEC
        plot = Plot(
            Axis(0, seconds, "Time (s)"),
            Axis(0, 1),
            height=110,
            title=f"{trace.label}  (counts {lo:.0f}-{hi:.0f})",
        )
        # Down-sample to ~600 cells for a smooth strip.
        step = max(len(normalized) // 600, 1)
        cells = normalized[: (len(normalized) // step) * step]
        cells = cells.reshape(-1, step).mean(axis=1)
        plot.heat_strip(cells, 0.1, 0.9)
        plots.append(plot)
    return stack_plots(plots, title="Figure 3: example loop-counting traces")


def render_fig4(result, averages=None) -> str:
    """Fig 4: normalized averaged traces per attacker (when provided),
    otherwise a bar-style summary of the correlations."""
    plot = Plot(
        Axis(-0.5, len(result.rows) - 0.5, "website"),
        Axis(0, 1.05, "r(loop, sweep)"),
        title=f"Figure 4: attacker-trace correlation ({result.n_runs} runs)",
    )
    edges = np.arange(len(result.rows) + 1) - 0.5
    plot.bars(edges, [row.correlation for row in result.rows], color=PALETTE[0])
    for i, row in enumerate(result.rows):
        plot.text(i - 0.3, min(row.correlation + 0.06, 1.0), row.site, size=9)
    return plot.render()


def render_fig5(result) -> str:
    """Fig 5: stacked softirq/resched handler-time share per site."""
    plots = []
    for row in result.rows:
        seconds = row.window_starts_ns / SEC
        peak = max(float(row.total_fraction.max() * 100), 1.0)
        plot = Plot(
            Axis(0, float(seconds.max()), "Time (s)"),
            Axis(0, peak * 1.15, "% of time"),
            height=130,
            title=row.site,
        )
        softirq = row.softirq_fraction * 100
        total = row.total_fraction * 100
        plot.area(seconds, 0, softirq, color=PALETTE[0], label="Softirq")
        plot.area(seconds, softirq, total, color=PALETTE[1], label="Resched")
        plots.append(plot)
    return stack_plots(
        plots, title="Figure 5: time spent processing interrupts"
    )


def render_fig6(result) -> str:
    """Fig 6: per-type gap-length histograms."""
    plots = []
    for itype, hist in result.histograms.items():
        if not hist.n_samples:
            continue
        counts = hist.counts.astype(float)
        peak = counts.max() if counts.max() > 0 else 1.0
        plot = Plot(
            Axis(0, hist.bin_edges_ns[-1] / US, "Gap length (us)"),
            Axis(0, peak * 1.1, "gaps"),
            height=110,
            title=itype.value,
        )
        plot.bars(hist.bin_edges_ns / US, counts, color=PALETTE[0])
        plots.append(plot)
    return stack_plots(plots, title="Figure 6: interrupt handling times")


def render_fig7(result) -> str:
    """Fig 7: observed-vs-real timer staircases with the ideal diagonal."""
    plots = []
    for sample in result.samples:
        real_ms = sample.real_ns / MS
        observed_ms = sample.observed_ns / MS
        hi = float(real_ms.max())
        plot = Plot(
            Axis(0, hi, "Real time (ms)"),
            Axis(0, hi * 1.05, "Observed (ms)"),
            height=170,
            title=sample.name,
        )
        plot.line(real_ms, real_ms, color="#999", dashed=True, label="ideal")
        # Down-sample the staircase for readable SVG sizes.
        step = max(len(real_ms) // 400, 1)
        plot.steps(real_ms[::step], observed_ms[::step], color=PALETTE[0],
                   label="observed")
        plots.append(plot)
    return stack_plots(plots, title="Figure 7: timer outputs")


def render_fig8(result) -> str:
    """Fig 8: distribution of real durations of one attacker loop."""
    plots = []
    for sample in result.samples:
        durations = sample.durations_ms
        hi = max(float(durations.max()) * 1.1, 1.0)
        counts, edges = np.histogram(durations, bins=40, range=(0, hi))
        plot = Plot(
            Axis(0, hi, "Real time (ms)"),
            Axis(0, max(counts.max(), 1) * 1.1, "periods"),
            height=120,
            title=sample.timer_name,
        )
        plot.bars(edges, counts, color=PALETTE[0])
        plots.append(plot)
    return stack_plots(
        plots,
        title=f"Figure 8: duration of one {result.period_ms:g}ms attacker loop",
    )


def render_table_bars(result, title: str, rows: list[tuple[str, float]]) -> str:
    """Generic bar rendering for table-style results."""
    plot = Plot(
        Axis(-0.5, len(rows) - 0.5, ""),
        Axis(0, 105, "top-1 accuracy (%)"),
        width=640,
        title=title,
    )
    edges = np.arange(len(rows) + 1) - 0.5
    plot.bars(edges, [value for _, value in rows], color=PALETTE[0])
    for i, (label, value) in enumerate(rows):
        plot.text(i - 0.4, min(value + 5, 102), f"{label} {value:.1f}", size=8)
    return plot.render()


def render_table3(result) -> str:
    rows = [
        (row.mechanism.replace("+ ", ""), row.result.top1.mean * 100)
        for row in result.rows
    ]
    return render_table_bars(result, "Table 3: isolation mechanisms", rows)


def render_table4(result) -> str:
    rows = [
        (f"{row.timer_name} P={row.period_ms:g}", row.result.top1.mean * 100)
        for row in result.rows
    ]
    return render_table_bars(result, "Table 4: timer defenses", rows)


#: Experiment id -> renderer (tables 1/2 are textual only).
RENDERERS = {
    "fig3": render_fig3,
    "fig4": render_fig4,
    "fig5": render_fig5,
    "fig6": render_fig6,
    "fig7": render_fig7,
    "fig8": render_fig8,
    "table3": render_table3,
    "table4": render_table4,
}


def render(experiment_id: str, result) -> str | None:
    """SVG for a result, or None when no renderer exists."""
    renderer = RENDERERS.get(experiment_id)
    return renderer(result) if renderer else None
