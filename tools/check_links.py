#!/usr/bin/env python3
"""Markdown link checker for the repo's docs — the CI docs hard gate.

Validates every inline markdown link in the checked files:

* **relative links** must resolve to a file or directory in the repo
  (checked against the filesystem, fragment stripped);
* **intra-repo anchors** (``docs/CLI.md#environment-variables`` or a
  bare ``#section``) must match a heading in the target file, using
  GitHub's slugification (lowercase, spaces to dashes, punctuation
  dropped, duplicate slugs suffixed ``-1``, ``-2``, ...);
* **external links** (``http://``, ``https://``, ``mailto:``) are
  skipped — CI must not depend on the network.

Usage::

    python tools/check_links.py                # README.md + docs/*.md
    python tools/check_links.py FILE [FILE...]

Exit status: 0 all links resolve, 1 any broken link (each printed as
``file:line: message``), 2 usage errors.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target).  Images (![alt](src)) are
#: matched too — their targets must resolve just the same.
_LINK_RE = re.compile(r"!?\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: ATX headings; setext headings don't occur in this repo's docs.
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

_FENCE_RE = re.compile(r"^(```|~~~)")

_SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def default_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def github_slug(heading: str, seen: Dict[str, int]) -> str:
    """GitHub's anchor slug for a heading text, tracking duplicates."""
    # Strip inline code/emphasis markers and links ([text](url) -> text).
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "").replace("_", " ")
    slug = text.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    slug = slug.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def heading_slugs(path: Path) -> set:
    slugs: set = set()
    seen: Dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match:
            slugs.add(github_slug(match.group(2), seen))
    return slugs


def iter_links(path: Path):
    """Yield ``(line_number, target)`` for links outside code fences."""
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        # Drop inline code spans so `[x](y)` examples aren't checked.
        stripped = re.sub(r"`[^`]*`", "", line)
        for match in _LINK_RE.finditer(stripped):
            yield number, match.group(1)


def check_file(path: Path, slug_cache: Dict[Path, set]) -> List[str]:
    problems: List[str] = []
    rel = path.relative_to(REPO_ROOT)
    for line, target in iter_links(path):
        if target.startswith(_SKIP_SCHEMES):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                problems.append(f"{rel}:{line}: broken link target {target!r}")
                continue
        else:
            resolved = path.resolve()
        if fragment:
            if resolved.is_dir() or resolved.suffix.lower() != ".md":
                # Anchors into non-markdown targets (source files) are
                # not checkable; the file-existence check above stands.
                continue
            if resolved not in slug_cache:
                slug_cache[resolved] = heading_slugs(resolved)
            if fragment.lower() not in slug_cache[resolved]:
                problems.append(
                    f"{rel}:{line}: anchor #{fragment} not found in "
                    f"{resolved.relative_to(REPO_ROOT)}"
                )
    return problems


def main(argv: List[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        files = [Path(arg).resolve() for arg in argv]
        missing = [f for f in files if not f.exists()]
        if missing:
            print(f"check_links: no such file: {missing[0]}", file=sys.stderr)
            return 2
    else:
        files = default_files()
    slug_cache: Dict[Path, set] = {}
    problems: List[str] = []
    for path in files:
        problems.extend(check_file(path, slug_cache))
    for problem in problems:
        print(problem)
    if problems:
        print(f"check_links: {len(problems)} broken link(s) in {len(files)} file(s)")
        return 1
    print(f"check_links: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
