"""Calibration harness: checks every paper-shape ordering at a mid scale.

Run:  python tools/calibrate.py [seed]
"""
import sys
import time

from repro.config import Scale
from repro.core.attacker import LoopCountingAttacker, SweepCountingAttacker
from repro.core.pipeline import FingerprintingPipeline
from repro.defenses.cache_noise import CacheSweepNoise
from repro.defenses.interrupt_noise import interrupt_noise_hooks
from repro.defenses.timer_defense import quantized_defense, randomized_defense
from repro.isolation.ladder import isolation_ladder
from repro.sim.machine import MachineConfig
from repro.timers.spec import CHROME_TIMER, NATIVE_TIMER
from repro.workload.browser import CHROME, LINUX, TOR_BROWSER

MID = Scale(name="mid", n_sites=24, traces_per_site=10, trace_seconds=8.0,
            period_ms=5.0, n_folds=3, backend="feature", open_world_sites=0)
seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
machine = MachineConfig(os=LINUX)

def cv(attacker=None, timer=None, period=None, noise=None, mc=machine, browser=CHROME):
    scale = MID.with_(period_ms=period) if period is not None else MID
    pipe = FingerprintingPipeline(mc, browser, attacker=attacker, scale=scale,
                                  timer=timer, seed=seed)
    t0 = time.time()
    r = pipe.run_closed_world(noise=noise)
    return r.top1.mean * 100, time.time() - t0

rows = []
loop, dt = cv(); rows.append(("loop/chrome", loop, dt))
sweep, dt = cv(attacker=SweepCountingAttacker()); rows.append(("sweep/chrome", sweep, dt))
tor, dt = cv(browser=TOR_BROWSER); rows.append(("loop/tor", tor, dt))
cache_n, dt = cv(noise=CacheSweepNoise().hooks(8_000_000_000)); rows.append(("loop+cachenoise", cache_n, dt))
irq_n, dt = cv(noise=interrupt_noise_hooks()); rows.append(("loop+irqnoise", irq_n, dt))
s_cache, dt = cv(attacker=SweepCountingAttacker(), noise=CacheSweepNoise().hooks(8_000_000_000)); rows.append(("sweep+cachenoise", s_cache, dt))
s_irq, dt = cv(attacker=SweepCountingAttacker(), noise=interrupt_noise_hooks()); rows.append(("sweep+irqnoise", s_irq, dt))
q, dt = cv(timer=quantized_defense().spec); rows.append(("quantized100", q, dt))
r5, dt = cv(timer=randomized_defense().spec); rows.append(("rand P=5", r5, dt))
r100, dt = cv(timer=randomized_defense().spec, period=100.0); rows.append(("rand P=100", r100, dt))
r500, dt = cv(timer=randomized_defense().spec, period=500.0); rows.append(("rand P=500", r500, dt))
for step in isolation_ladder():
    acc, dt = cv(timer=NATIVE_TIMER, mc=step.machine)
    rows.append((f"T3 {step.name}", acc, dt))

def _irqbalance_reduces_stolen():
    import numpy as np
    from repro.sim.machine import InterruptSynthesizer
    from repro.workload.website import profile_for
    totals = []
    for irqbalance in (False, True):
        config = MachineConfig(os=LINUX, pin_cores=True, irqbalance=irqbalance)
        syn = InterruptSynthesizer(config)
        stolen = 0.0
        for s_ in range(4):
            rng = np.random.default_rng(s_)
            site = profile_for("nytimes.com")
            tl = site.generate_load(rng, 8_000_000_000)
            run = syn.synthesize(tl, style=site.style, rng=rng)
            stolen += run.attacker_timeline.gaps.total_stolen_ns
        totals.append(stolen)
    return totals[1] < totals[0]


for name, acc, dt in rows:
    print(f"{name:32s} {acc:5.1f}%  ({dt:.0f}s)")

base = 100 / MID.n_sites
checks = [
    ("loop > sweep", loop > sweep),
    ("loop high (>=88)", loop >= 88),
    ("tor degraded but >5x base", 5 * base < tor < loop - 10),
    ("cache noise mild on loop (<8)", loop - cache_n < 8),
    ("irq noise severe on loop (>18)", loop - irq_n > 18),
    ("cache noise mild on sweep (<8)", sweep - s_cache < 8),
    ("irq noise severe on sweep", sweep - s_irq > 9),
    ("irq >> cache noise for sweep", (sweep - s_irq) > 2.0 * max(sweep - s_cache, 0.1)),
    ("quantized below jittered", q < loop - 4),
    ("rand P=5 near base (<3.5x)", r5 < 3.5 * base),
    ("rand P=100 < 7x base", r100 < 7 * base),
    ("rand P=500 far below undefended", r500 < 12 * base and r500 < loop - 25),
]
t3 = [r[1] for r in rows if r[0].startswith("T3")]
checks += [
    ("T3 dvfs small drop (<5)", -2 <= t3[0] - t3[1] < 5),
    ("T3 pin tiny change (<3)", abs(t3[1] - t3[2]) < 3),
    # Accuracy saturates at simulator scale, so check the physics
    # directly: irqbalance removes stolen time from the attacker core.
    ("T3 irqbalance removes stolen time", _irqbalance_reduces_stolen()),
    ("T3 vm recovers", t3[4] >= t3[3] - 0.5),
]
failures = [name for name, ok in checks if not ok]
for name, ok in checks:
    print(("PASS " if ok else "FAIL ") + name)
print(f"\n{len(checks)-len(failures)}/{len(checks)} shape checks pass")
