"""Benchmark: regenerate Fig 8 (real duration of one 5 ms attacker loop).

Paper shape: exactly 100 ms under Tor's quantizer, a tight 4.8-5.2 ms
quasi-Gaussian under Chrome's jitter, and 0-100 ms of real time under
the randomized timer — the attacker cannot know how long a loop took.
"""

import pytest

from repro.config import SMOKE
from repro.experiments import fig8
from repro.engine import RunContext


@pytest.fixture(scope="module")
def result():
    return fig8.run(RunContext.default(scale=SMOKE, seed=0), period_ms=5.0, n_periods=500)


def test_fig8_period_durations(benchmark, archive, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    archive("fig8", result)


def test_quantized_locks_to_100ms(benchmark, result):
    lo, med, hi, std = result.sample_for("Quantized").stats()
    assert lo == med == hi == 100.0
    assert std == 0.0


def test_jittered_tight_gaussianish(benchmark, result):
    lo, med, hi, std = result.sample_for("Jittered").stats()
    assert 4.8 <= lo and hi <= 5.2
    assert std < 0.2


def test_randomized_spread_dwarfs_jitter(benchmark, result):
    _, _, hi_rand, std_rand = result.sample_for("Randomized").stats()
    _, _, _, std_jitter = result.sample_for("Jittered").stats()
    assert std_rand > 20 * std_jitter
    assert hi_rand > 20.0  # single loop can span tens of ms

def test_randomized_bounded_by_threshold_regime(benchmark, result):
    """Durations stay within the 0-100 ms envelope of Fig 8c."""
    durations = result.sample_for("Randomized").durations_ms
    assert durations.max() <= 130.0
