"""Benchmark: regenerate Fig 6 (interrupt handling-time distributions).

Paper shape: all gaps exceed ~1.5 µs (Meltdown-era kernel entry); each
type has a characteristic distribution; the IRQ-work spike coincides
with timer ticks because IRQ work cannot fire on its own.
"""

import pytest

from repro.config import SMOKE
from repro.experiments import fig6
from repro.sim.events import US
from repro.sim.interrupts import InterruptType
from repro.engine import RunContext


@pytest.fixture(scope="module")
def result():
    return fig6.run(RunContext.default(scale=SMOKE.with_(trace_seconds=6.0), seed=0))


def test_fig6_handler_time_distributions(benchmark, archive, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    archive("fig6", result)


def test_meltdown_floor_on_every_type(benchmark, result):
    for itype, hist in result.histograms.items():
        assert hist.n_samples > 50, itype
        assert hist.min_ns() >= 1.5 * US - 1e-6, itype


def test_types_have_distinct_modes(benchmark, result):
    """Takeaway 6: characteristic handling-time distributions."""
    modes = {t: h.mode_ns() for t, h in result.histograms.items()}
    assert modes[InterruptType.TIMER] > modes[InterruptType.NETWORK_RX]


def test_softirqs_are_broadest(benchmark, result):
    softirq = result.histograms[InterruptType.SOFTIRQ_NET_RX].samples
    network = result.histograms[InterruptType.NETWORK_RX].samples
    timer = result.histograms[InterruptType.TIMER].samples
    assert softirq.std() > network.std()
    assert softirq.std() > timer.std()


def test_irq_work_piggybacks_on_timer(benchmark, result):
    assert result.irq_work_timer_coincidence > 0.6
