"""Benchmark: regenerate Table 1 (loop vs cache-occupancy per browser/OS).

Paper shape: the loop-counting attack matches or beats the
cache-occupancy attack in every configuration; Chrome/Firefox/Safari
land in the ~92-97 % range while Tor Browser (100 ms timer, slow loads)
drops far below them; the open-world combined accuracy stays high.
"""

import pytest

from repro.config import SMOKE
from repro.experiments import table1
from repro.workload.browser import CHROME, LINUX, MACOS, SAFARI, TOR_BROWSER
from repro.engine import RunContext

#: A representative subset of the 8-config grid (full grid = `biggerfish
#: table1 --scale default`): fast browser on two OSes plus Tor.
BENCH_CONFIGS = (
    (CHROME, LINUX),
    (SAFARI, MACOS),
    (TOR_BROWSER, LINUX),
)


@pytest.fixture(scope="module")
def result(request):
    return table1.run(RunContext.default(scale=SMOKE, seed=0), configs=BENCH_CONFIGS, open_world=True)


def test_table1_browser_grid(benchmark, archive, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    archive("table1", result)
    assert len(result.rows) == 3


def test_loop_beats_cache_occupancy(benchmark, result):
    """The paper's headline: loop wins in (nearly) every configuration."""
    assert result.loop_win_count() == len(result.rows)


def test_fast_browsers_high_accuracy(benchmark, result):
    base = 1.0 / SMOKE.n_sites
    for row in result.rows:
        if row.browser != TOR_BROWSER.name:
            assert row.loop_closed.top1.mean > 0.55


def test_tor_degraded_but_alive(benchmark, result):
    """Tor's 100 ms timer halves accuracy but does not stop the attack."""
    tor = next(r for r in result.rows if r.browser == TOR_BROWSER.name)
    fast = [r for r in result.rows if r.browser != TOR_BROWSER.name]
    base = 1.0 / SMOKE.n_sites
    assert tor.loop_closed.top1.mean > 1.5 * base
    assert tor.loop_closed.top1.mean < min(r.loop_closed.top1.mean for r in fast)


def test_open_world_sensitive_sites_detected(benchmark, result):
    """Open world: sensitive visits are rarely waved through as
    non-sensitive.  (The paper's 99 % non-sensitive accuracy needs its
    5 000 non-sensitive training traces; at smoke scale we assert the
    attacker-relevant property instead: low missed-sensitive rate.)"""
    for row in result.rows:
        assert row.loop_open.missed_sensitive_rate is not None
        assert row.loop_open.missed_sensitive_rate.mean < 0.40
