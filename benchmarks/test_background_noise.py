"""Benchmark: §4.2 background-noise robustness.

Paper shape: Slack + Spotify cost the attack only a few points (96.6 %
-> 93.4 %), far less than purpose-built interrupt noise — everyday
applications do not defend you.
"""

import pytest

from repro.config import SMOKE
from repro.experiments import background_noise
from repro.engine import RunContext


@pytest.fixture(scope="module")
def result():
    return background_noise.run(RunContext.default(scale=SMOKE.with_(traces_per_site=8), seed=0))


def test_background_noise_robustness(benchmark, archive, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    archive("background_noise", result)


def test_attack_survives_office_apps(benchmark, result):
    assert result.noisy.top1.mean > 0.5


def test_drop_is_small(benchmark, result):
    """Paper: a drop of just a few points (3.2)."""
    assert result.drop < 0.15
