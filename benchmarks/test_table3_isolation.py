"""Benchmark: regenerate Table 3 (isolation-mechanism ladder).

Paper shape (Python attacker, closed world): 95.2 → 94.2 → 94.0 → 88.2 →
91.6.  Disabling DVFS and pinning cores barely matter; removing movable
IRQs costs the most but leaves the attack strong (non-movable interrupts
still leak); VM isolation *increases* accuracy via amplification.
"""

import pytest

from repro.config import SMOKE
from repro.experiments import table3
from repro.engine import RunContext


@pytest.fixture(scope="module")
def result():
    return table3.run(RunContext.default(scale=SMOKE.with_(traces_per_site=8), seed=0))


def test_table3_isolation_ladder(benchmark, archive, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    archive("table3", result)
    assert len(result.rows) == 5


def test_attack_is_strong_by_default(benchmark, result):
    assert result.rows[0].result.top1.mean > 0.6


def test_dvfs_and_pinning_barely_matter(benchmark, result):
    accuracies = result.accuracy_by_step()
    assert accuracies[0] - accuracies[1] < 0.12  # paper: -1.0 point
    assert abs(accuracies[1] - accuracies[2]) < 0.12  # paper: -0.2


def test_attack_survives_every_mechanism(benchmark, result):
    """Takeaway 3: no mechanism (even all of them) stops the attack."""
    base = 1.0 / SMOKE.n_sites
    for row in result.rows:
        assert row.result.top1.mean > 3 * base


def test_vm_isolation_does_not_help(benchmark, result):
    """§5.1's counter-intuitive result: separate VMs amplify interrupts
    and accuracy goes back *up* relative to the irqbalanced rung."""
    accuracies = result.accuracy_by_step()
    assert accuracies[4] >= accuracies[3] - 0.03
