"""Benchmark: regenerate Table 2 (noise countermeasures vs both attacks).

Paper shape (Chrome/Linux, closed world):

* loop-counting beats sweep-counting with no noise (95.7 vs 78.4);
* cache-sweep noise barely dents either attack (-3.1 / -2.2 points);
* interrupt noise devastates both (-33.7 / -23.1 points);
* the interrupt-noise extension costs +15.7 % page-load time.
"""

import pytest

from repro.config import SMOKE
from repro.experiments import table2
from repro.engine import RunContext


@pytest.fixture(scope="module")
def result():
    return table2.run(RunContext.default(scale=SMOKE.with_(traces_per_site=8), seed=0))


def test_table2_noise_grid(benchmark, archive, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    archive("table2", result)


def test_loop_beats_sweep_without_noise(benchmark, result):
    loop, sweep = result.rows
    assert loop.no_noise.top1.mean > sweep.no_noise.top1.mean


def test_cache_noise_is_mild(benchmark, result):
    """Sweeping the LLC barely affects either attack."""
    for row in result.rows:
        assert row.drop_from_cache_noise() < 0.15


def test_interrupt_noise_is_severe_on_loop(benchmark, result):
    loop = result.rows[0]
    assert loop.drop_from_interrupt_noise() > 0.20


def test_interrupt_noise_dominates_cache_noise(benchmark, result):
    """The smoking gun: interrupt noise >> cache noise for BOTH attacks,
    so the sweep-counting attack's leakage is interrupts, not cache."""
    for row in result.rows:
        assert row.drop_from_interrupt_noise() > row.drop_from_cache_noise() + 0.05


def test_page_load_overhead(benchmark, result):
    assert result.page_load_overhead == pytest.approx(3.61 / 3.12, abs=1e-3)
