"""Benchmark: regenerate Fig 4 (loop vs sweep trace correlation).

Paper: averaged over 100 runs, the two attackers' normalized traces
correlate at r = 0.87 (nytimes), 0.79 (amazon), 0.94 (weather) — the
attackers see the same system events even though one never touches
memory.
"""

from repro.config import SMOKE
from repro.experiments import fig4
from repro.engine import RunContext


def test_fig4_attacker_correlation(benchmark, archive):
    result = benchmark.pedantic(
        lambda: fig4.run(RunContext.default(scale=SMOKE.with_(traces_per_site=12), seed=0)),
        rounds=1,
        iterations=1,
    )
    archive("fig4", result)

    assert [row.site for row in result.rows] == [
        "nytimes.com", "amazon.com", "weather.com",
    ]
    for row in result.rows:
        # Strong positive correlation on every site (paper: 0.79-0.94;
        # we average fewer runs, so the bar is slightly lower).
        assert row.correlation > 0.55, row
    mean_r = sum(r.correlation for r in result.rows) / 3
    assert mean_r > 0.65
