"""Benchmark harness configuration.

Every benchmark regenerates one paper table/figure at ``SMOKE`` scale,
asserts its qualitative shape (who wins, what drops, where floors sit)
and archives the rendered table under ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def archive(results_dir):
    """Callable writing a rendered experiment table to an artifact file."""

    def write(experiment_id: str, result) -> None:
        path = results_dir / f"{experiment_id}.txt"
        path.write_text(result.format_table() + "\n")

    return write
