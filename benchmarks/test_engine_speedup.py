"""Benchmark: parallel engine and trace cache vs the serial baseline.

Records three wall-clock measurements for ``table2`` at ``SMOKE`` scale
into ``benchmarks/results/engine.txt``:

* cold serial (``jobs=1``, empty cache),
* cold parallel (``jobs=4``, cache disabled),
* warm serial (``jobs=1``, cache populated by the cold run).

Determinism is asserted unconditionally — all three produce the same
rendered table.  The warm-cache run must beat the cold run by >= 3x (it
skips simulation entirely).  The parallel run's speedup is recorded but
not asserted: CI boxes may expose a single core, where process fan-out
cannot win.
"""

from __future__ import annotations

import time

import pytest

from repro.config import SMOKE
from repro.engine import ExecutionEngine, RunContext, TraceCache
from repro.experiments import table2  # noqa: F401  (registers table2)
from repro.experiments.base import get_experiment

pytestmark = pytest.mark.slow


def _run(jobs: int, cache: TraceCache | None) -> tuple[float, str]:
    engine = ExecutionEngine(jobs=jobs, cache=cache)
    ctx = RunContext(scale=SMOKE, seed=0, engine=engine)
    started = time.perf_counter()
    result = get_experiment("table2")(ctx)
    return time.perf_counter() - started, result.format_table()


def test_engine_speedup(results_dir, tmp_path_factory):
    cache = TraceCache(tmp_path_factory.mktemp("engine-bench") / "cache")

    cold_s, cold_table = _run(jobs=1, cache=cache)
    parallel_s, parallel_table = _run(jobs=4, cache=None)
    warm_s, warm_table = _run(jobs=1, cache=cache)

    assert parallel_table == cold_table, "parallel run must be bit-identical"
    assert warm_table == cold_table, "cached run must be bit-identical"

    warm_speedup = cold_s / warm_s
    lines = [
        "table2 @ smoke scale (seed 0)",
        f"cold serial (jobs=1):    {cold_s:8.2f}s",
        f"cold parallel (jobs=4):  {parallel_s:8.2f}s  ({cold_s / parallel_s:.2f}x)",
        f"warm cache (jobs=1):     {warm_s:8.2f}s  ({warm_speedup:.2f}x)",
        f"cache: {cache.stats.hits} hits, {cache.stats.misses} misses, "
        f"{cache.stats.bytes_written} bytes written",
        "parallel == serial: yes",
        "warm == cold: yes",
    ]
    (results_dir / "engine.txt").write_text("\n".join(lines) + "\n")

    assert warm_speedup >= 3.0, f"warm cache only {warm_speedup:.2f}x faster"
