"""Benchmark: parallel engine, trace cache and profiling overhead.

Records wall-clock measurements for ``table2`` at ``SMOKE`` scale into
``benchmarks/results/engine.txt``:

* cold serial (``jobs=1``, empty cache),
* cold parallel (``jobs=4``, cache disabled),
* warm serial (``jobs=1``, cache populated by the cold run),
* fault-injected parallel (``jobs=4``, 10 % of tasks raise and retry),
* observability on vs off (``--profile`` equivalent, best-of-2 each).

Determinism is asserted unconditionally — every variant produces the
same rendered table, profiled, fault-injected or not.  The warm-cache
run must beat the cold run by >= 3x (it skips simulation entirely)
and profiling overhead
must stay under 5 %.  The parallel run's speedup is recorded but not
asserted: CI boxes may expose a single core, where process fan-out
cannot win.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.config import SMOKE
from repro.engine import ExecutionEngine, RunContext, TraceCache
from repro.engine import faults
from repro.engine.faults import FaultPlan
from repro.experiments import table2  # noqa: F401  (registers table2)
from repro.experiments.base import get_experiment

pytestmark = pytest.mark.slow

#: Maximum tolerated slowdown from enabling the obs subsystem.
OBS_OVERHEAD_CAP = 0.05


def _run(
    jobs: int, cache: TraceCache | None, backoff_s: float | None = None
) -> tuple[float, str, ExecutionEngine]:
    kwargs = {} if backoff_s is None else {"backoff_s": backoff_s}
    engine = ExecutionEngine(jobs=jobs, cache=cache, **kwargs)
    ctx = RunContext(scale=SMOKE, seed=0, engine=engine)
    started = time.perf_counter()
    result = get_experiment("table2")(ctx)
    return time.perf_counter() - started, result.format_table(), engine


def test_engine_speedup(results_dir, tmp_path_factory):
    cache = TraceCache(tmp_path_factory.mktemp("engine-bench") / "cache")

    cold_s, cold_table, _ = _run(jobs=1, cache=cache)
    parallel_s, parallel_table, _ = _run(jobs=4, cache=None)
    with faults.injected(FaultPlan(rate=0.1, modes=("raise",), seed=1)):
        faulty_s, faulty_table, faulty_engine = _run(
            jobs=4, cache=None, backoff_s=0.001
        )
    warm_s, warm_table, _ = _run(jobs=1, cache=cache)

    assert parallel_table == cold_table, "parallel run must be bit-identical"
    assert faulty_table == cold_table, "faulted run must be bit-identical"
    assert warm_table == cold_table, "cached run must be bit-identical"

    warm_speedup = cold_s / warm_s
    retries = faulty_engine.fault_totals["retries"]
    lines = [
        "table2 @ smoke scale (seed 0)",
        f"cold serial (jobs=1):    {cold_s:8.2f}s",
        f"cold parallel (jobs=4):  {parallel_s:8.2f}s  ({cold_s / parallel_s:.2f}x)",
        f"faulted parallel (10%):  {faulty_s:8.2f}s  ({retries} retries)",
        f"warm cache (jobs=1):     {warm_s:8.2f}s  ({warm_speedup:.2f}x)",
        f"cache: {cache.stats.hits} hits, {cache.stats.misses} misses, "
        f"{cache.stats.bytes_written} bytes written",
        "parallel == serial: yes",
        "faulted == serial: yes",
        "warm == cold: yes",
    ]
    (results_dir / "engine.txt").write_text("\n".join(lines) + "\n")

    assert warm_speedup >= 3.0, f"warm cache only {warm_speedup:.2f}x faster"


def test_obs_overhead(results_dir, tmp_path_factory):
    """Profiling must cost < 5 % and change nothing in the output.

    Plain and profiled runs are interleaved and each side takes its best
    of three, so transient machine load inflates neither side's floor.
    """
    plain_times: list[float] = []
    profiled_times: list[float] = []
    plain_table = profiled_table = None

    for attempt in range(3):
        elapsed, plain_table, _ = _run(jobs=1, cache=None)
        plain_times.append(elapsed)

        obs.enable(tmp_path_factory.mktemp(f"obs-bench-{attempt}"))
        try:
            elapsed, profiled_table, _ = _run(jobs=1, cache=None)
        finally:
            obs.disable()
        profiled_times.append(elapsed)

    assert profiled_table == plain_table, "profiled run must be bit-identical"

    plain_s, profiled_s = min(plain_times), min(profiled_times)
    overhead = profiled_s / plain_s - 1.0
    lines = [
        "",
        "obs overhead (table2 @ smoke, jobs=1, no cache, best of 3):",
        f"profiling off:           {plain_s:8.2f}s",
        f"profiling on:            {profiled_s:8.2f}s  ({overhead:+.1%})",
        "profiled == plain: yes",
    ]
    with (results_dir / "engine.txt").open("a") as handle:
        handle.write("\n".join(lines) + "\n")

    assert overhead < OBS_OVERHEAD_CAP, (
        f"obs overhead {overhead:.1%} exceeds {OBS_OVERHEAD_CAP:.0%} cap"
    )
