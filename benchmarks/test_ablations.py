"""Ablation benchmarks for the design choices DESIGN.md §7 calls out.

These are not paper tables; they isolate the mechanisms behind them:

* the sweep-counting attacker's cache-vs-interrupt signal split (drives
  the Table 2 contrast),
* softirq placement as the non-movable leakage path (drives Table 3's
  irqbalance rung),
* the VM amplification factor (drives Table 3's final rung), and
* the classifier backends on identical data.
"""

import numpy as np
import pytest
from dataclasses import replace

from repro.config import SMOKE
from repro.core.attacker import SweepCountingAttacker
from repro.core.pipeline import FingerprintingPipeline
from repro.ml.models import FeatureFingerprinter, LstmFingerprinter
from repro.sim.machine import InterruptSynthesizer, MachineConfig
from repro.sim.vm import VmConfig
from repro.workload.browser import CHROME, LINUX
from repro.workload.website import profile_for

ABLATION_SCALE = SMOKE.with_(n_sites=6, traces_per_site=6, trace_seconds=4.0)


def closed_world_accuracy(attacker=None, machine=None, scale=ABLATION_SCALE, seed=0):
    pipeline = FingerprintingPipeline(
        machine or MachineConfig(os=LINUX), CHROME,
        attacker=attacker, scale=scale, seed=seed,
    )
    return pipeline.run_closed_world().top1.mean


def test_sweep_signal_is_not_the_cache(benchmark, archive):
    """Removing the cache channel entirely barely moves the sweep attack:
    its discriminative signal is the interrupt channel (Takeaway 2)."""

    def run():
        with_cache = closed_world_accuracy(attacker=SweepCountingAttacker())
        no_cache = closed_world_accuracy(
            attacker=SweepCountingAttacker(occupancy_coupling=0.0)
        )
        return with_cache, no_cache

    with_cache, no_cache = benchmark.pedantic(run, rounds=1, iterations=1)
    base = 1.0 / ABLATION_SCALE.n_sites
    assert no_cache > 1.5 * base  # interrupt channel alone classifies
    assert abs(with_cache - no_cache) < 0.25  # cache adds little


def test_nonmovable_placement_is_the_irqbalance_leak(benchmark):
    """With irqbalance on, the attacker's signal survives only because
    the kernel places softirqs/IPIs on arbitrary cores.  Forcing all
    deferred work to follow its (pinned) trigger core kills most of the
    remaining leakage on the attacker core."""
    from repro.sim.interrupts import NON_MOVABLE_TYPES, InterruptType

    def stolen_on_attacker(follow_probability):
        os_spec = replace(LINUX, softirq_follow_probability=follow_probability)
        machine = MachineConfig(os=os_spec, irqbalance=True, pin_cores=True)
        synthesizer = InterruptSynthesizer(machine)
        total = 0.0
        for seed in range(3):
            rng = np.random.default_rng(seed)
            site = profile_for("nytimes.com")
            timeline = site.generate_load(rng, 4_000_000_000)
            run = synthesizer.synthesize(timeline, style=site.style, rng=rng)
            total += run.attacker_timeline.gaps.total_stolen_ns
        return total

    def run():
        return stolen_on_attacker(0.6), stolen_on_attacker(1.0)

    leaky, contained = benchmark.pedantic(run, rounds=1, iterations=1)
    assert contained < 0.8 * leaky


def test_vm_amplification_scales_signal(benchmark):
    """Stolen time grows monotonically with the VM amplification factor
    (the §5.1 explanation for Table 3's counter-intuitive last rung)."""

    def stolen_for(amplification):
        vm = VmConfig(enabled=True, amplification=amplification)
        machine = MachineConfig(os=LINUX, pin_cores=True, irqbalance=True, vm=vm)
        synthesizer = InterruptSynthesizer(machine)
        rng = np.random.default_rng(1)
        site = profile_for("amazon.com")
        timeline = site.generate_load(rng, 4_000_000_000)
        run = synthesizer.synthesize(timeline, style=site.style, rng=rng)
        return run.attacker_timeline.gaps.total_stolen_ns

    def run():
        return [stolen_for(a) for a in (1.0, 1.8, 2.6)]

    stolen = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stolen[0] < stolen[1] < stolen[2]


def test_classifier_backends_agree(benchmark):
    """The fast feature backend and the paper's CNN+LSTM reach comparable
    conclusions on identical data (the backend substitution is sound)."""
    pipeline = FingerprintingPipeline(
        MachineConfig(os=LINUX), CHROME,
        scale=ABLATION_SCALE.with_(n_sites=4, traces_per_site=20), seed=2,
    )
    x, labels = pipeline.collect_closed_world()
    from repro.ml.encoding import LabelEncoder

    encoder = LabelEncoder()
    y = encoder.fit_transform(labels)
    split = np.arange(len(y)) % 5 != 0
    base = 1.0 / encoder.n_classes

    def run():
        results = {}
        feature = FeatureFingerprinter(seed=0).fit(x[split], y[split], encoder.n_classes)
        results["feature"] = (
            feature.predict_proba(x[~split]).argmax(axis=1) == y[~split]
        ).mean()
        lstm = LstmFingerprinter(
            conv_filters=16, lstm_units=16, dropout=0.2, epochs=80,
            learning_rate=0.003, patience=25, batch_size=16, seed=0,
        ).fit(x[split], y[split], encoder.n_classes)
        results["lstm"] = (
            lstm.predict_proba(x[~split]).argmax(axis=1) == y[~split]
        ).mean()
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results["feature"] > 2 * base
    assert results["lstm"] > 2 * base
