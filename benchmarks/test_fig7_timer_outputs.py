"""Benchmark: regenerate Fig 7 (secure-timer output staircases).

Paper shape: all three timers are monotone; Tor's quantizer deviates
from real time by up to 100 ms in big steps, Chrome's jitter stays
within 0.2 ms, and the randomized timer wanders with random increments
at random intervals.
"""

import pytest

from repro.config import SMOKE
from repro.experiments import fig7
from repro.engine import RunContext


@pytest.fixture(scope="module")
def result():
    return fig7.run(RunContext.default(scale=SMOKE, seed=0))


def test_fig7_timer_outputs(benchmark, archive, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    archive("fig7", result)


def test_all_timers_monotone(benchmark, result):
    assert all(s.monotonic for s in result.samples)


def test_quantized_few_big_steps(benchmark, result):
    tor = next(s for s in result.samples if "Tor" in s.name)
    assert tor.n_distinct <= 3  # 200 ms window / 100 ms resolution
    assert tor.max_deviation_ms > 90


def test_jittered_bounded_by_2_delta(benchmark, result):
    chrome = next(s for s in result.samples if "Chrome" in s.name)
    assert chrome.max_deviation_ms < 0.2


def test_randomized_wanders_in_between(benchmark, result):
    ours = next(s for s in result.samples if "ours" in s.name)
    chrome = next(s for s in result.samples if "Chrome" in s.name)
    assert ours.max_deviation_ms > 10 * chrome.max_deviation_ms
    assert 3 <= ours.n_distinct <= 60  # random increments at random times
