"""Benchmark: regenerate Fig 5 + the §5.2 attribution proof.

Paper shape: per-100 ms handler-time share tracks each site's trace
shape (nytimes front-loaded, weather.com rescheduling-heavy), and >99 %
of attacker-visible gaps >100 ns are caused by interrupts.
"""

import pytest

from repro.config import SMOKE
from repro.experiments import fig5
from repro.engine import RunContext


@pytest.fixture(scope="module")
def result():
    return fig5.run(RunContext.default(scale=SMOKE.with_(trace_seconds=8.0, traces_per_site=12), seed=0))


def test_fig5_interrupt_time(benchmark, archive, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    archive("fig5", result)


def test_over_99_percent_attributed(benchmark, result):
    """The paper's rigorous proof of the interrupt channel."""
    assert result.n_gaps > 500
    assert result.attributed_fraction > 0.99


def test_weather_is_resched_dominated(benchmark, result):
    shares = {row.site: row.resched_share() for row in result.rows}
    assert shares["weather.com"] > 2 * shares["amazon.com"]


def test_handler_time_tracks_activity(benchmark, result):
    """nytimes's handler time concentrates in the early trace (Fig 5)."""
    nytimes = next(r for r in result.rows if r.site == "nytimes.com")
    n = len(nytimes.total_fraction)
    early = nytimes.total_fraction[: n // 2].mean()
    late = nytimes.total_fraction[3 * n // 4 :].mean()
    assert early > 1.5 * late


def test_peak_handler_share_in_band(benchmark, result):
    """Fig 5 peaks around ~5 % of CPU time in handlers."""
    for row in result.rows:
        assert 0.01 < row.total_fraction.max() < 0.25
