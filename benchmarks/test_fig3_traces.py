"""Benchmark: regenerate Fig 3 (example loop-counting traces).

Paper: 15 s traces at P = 5 ms in Chrome/Linux for nytimes.com,
amazon.com and weather.com; counters range ~21 000–27 000 with darker
(interrupt-heavy) bands where the site is active.
"""

import numpy as np

from repro.config import SMOKE
from repro.experiments import fig3
from repro.engine import RunContext


def test_fig3_example_traces(benchmark, archive):
    result = benchmark.pedantic(
        lambda: fig3.run(RunContext.default(scale=SMOKE.with_(period_ms=5.0), seed=0)),
        rounds=1,
        iterations=1,
    )
    archive("fig3", result)

    lo, hi = result.counter_range()
    # Counter ceiling at the paper's ~27k (P = 5 ms).
    assert 24_000 <= hi <= 29_000
    for trace in result.traces:
        vector = trace.to_vector()
        # Interrupt-heavy phases produce visible dips (darker bands).
        assert vector.min() < 0.93 * vector.max()
        # nytimes/amazon front-load their activity: the early half of the
        # trace is darker (smaller counters) than the late half.
        if trace.label in ("nytimes.com", "amazon.com"):
            half = len(vector) // 2
            assert vector[:half].mean() < vector[half:].mean()
