"""Benchmark: regenerate Table 4 (timer defenses).

Paper shape (closed world): Chrome's jittered timer leaves the attack at
96.6 %; Tor-style quantization only drops it to 86.0 %; the randomized
timer crushes it to ~1-5 % regardless of the attacker's period length
(P = 5, 100, 500 ms).
"""

import pytest

from repro.config import SMOKE
from repro.experiments import table4
from repro.engine import RunContext


@pytest.fixture(scope="module")
def result():
    return table4.run(RunContext.default(scale=SMOKE.with_(period_ms=5.0, traces_per_site=8), seed=0))


def test_table4_timer_defenses(benchmark, archive, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    archive("table4", result)
    assert len(result.rows) == 5


def test_jittered_timer_does_not_defend(benchmark, result):
    assert result.rows[0].result.top1.mean > 0.6


def test_quantization_weaker_than_randomization(benchmark, result):
    """Coarse quantization costs some accuracy; randomization crushes it."""
    jittered = result.rows[0].result.top1.mean
    quantized = result.rows[1].result.top1.mean
    randomized_p5 = result.rows[2].result.top1.mean
    assert randomized_p5 < quantized
    assert randomized_p5 < jittered / 2


def test_randomized_near_base_rate(benchmark, result):
    base = result.base_rate
    assert result.rows[2].result.top1.mean < 3.5 * base


def test_longer_periods_do_not_rescue_attack(benchmark, result):
    """Even P = 100/500 ms leaves the attack far below the undefended
    baseline (paper: 1.9 % and 5.2 % vs 96.6 %)."""
    jittered = result.rows[0].result.top1.mean
    for row in result.rows[3:]:
        assert row.result.top1.mean < jittered - 0.25
